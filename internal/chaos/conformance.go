package chaos

import (
	"fmt"

	"soteria/internal/memctrl"
)

// ConformanceConfig shapes one strategy's trip through the shared
// conformance suite. The same config drives every registered strategy, so
// the suite is an apples-to-apples contract: identical workload, identical
// crash schedule, identical acknowledged-write oracle.
type ConformanceConfig struct {
	Seed   int64
	Writes int
	Mode   memctrl.Mode
	// Stride thins the crash-point sweeps (1 = every boundary).
	Stride int
	// FaultTrials is the number of fault-campaign trials (0 skips the
	// campaign); FaultRate is its per-boundary fault probability.
	FaultTrials int
	FaultRate   float64
	Logf        func(format string, args ...any)
}

// ConformanceResult is one strategy's outcome across the four legs of the
// suite: the full crash-point sweep, the nested crash-during-recovery
// sweep, the unrecoverable-data fault campaign, and the checkpoint/restore
// sweep (restore-then-recover must equal straight-line recover at every
// crash point).
type ConformanceResult struct {
	Strategy    string
	CrashSweep  *CampaignResult
	NestedSweep *CampaignResult
	Faults      *CampaignResult
	Checkpoint  *CampaignResult
}

func (r *ConformanceResult) legs() []*CampaignResult {
	return []*CampaignResult{r.CrashSweep, r.NestedSweep, r.Faults, r.Checkpoint}
}

// Failures flattens every failing scenario across the four legs.
func (r *ConformanceResult) Failures() []Failure {
	var out []Failure
	for _, c := range r.legs() {
		if c != nil {
			out = append(out, c.Failures...)
		}
	}
	return out
}

// Runs sums scenario executions across the four legs.
func (r *ConformanceResult) Runs() int {
	n := 0
	for _, c := range r.legs() {
		if c != nil {
			n += c.Runs
		}
	}
	return n
}

// Conformance runs one strategy through the shared suite. The nested sweep
// anchors its first crash at the middle workload boundary — the point where
// the most tracked state is in flight.
func Conformance(strategy string, cfg ConformanceConfig) (*ConformanceResult, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := Config{
		Seed:     cfg.Seed,
		Writes:   cfg.Writes,
		Mode:     cfg.Mode,
		Strategy: strategy,
		CrashAt:  -1, NestedCrashAt: -1,
	}
	out := &ConformanceResult{Strategy: strategy}

	logf("[%s] crash sweep", strategy)
	cs, err := CrashSweep(base, cfg.Stride, logf)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s crash sweep: %w", strategy, err)
	}
	out.CrashSweep = cs

	if cs.Boundaries > 0 {
		nested := base
		nested.CrashAt = cs.Boundaries / 2
		logf("[%s] nested sweep (first crash at %d)", strategy, nested.CrashAt)
		ns, err := NestedSweep(nested, cfg.Stride, logf)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s nested sweep: %w", strategy, err)
		}
		out.NestedSweep = ns
	}

	if cs.Boundaries > 0 {
		// Checkpoint/restore conformance: serializing the crashed
		// controller, restoring it into a fresh one and recovering must be
		// indistinguishable — byte-identical checkpoints, identical
		// recovery reports — from recovering in place, at every crash
		// point the crash sweep covered.
		logf("[%s] checkpoint sweep", strategy)
		ck, err := CheckpointSweep(base, cfg.Stride, logf)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s checkpoint sweep: %w", strategy, err)
		}
		out.Checkpoint = ck
	}

	if cfg.FaultTrials > 0 {
		faulty := base
		faulty.FaultRate = cfg.FaultRate
		if faulty.FaultRate <= 0 {
			faulty.FaultRate = 0.01
		}
		logf("[%s] fault campaign (%d trials, rate %v)", strategy, cfg.FaultTrials, faulty.FaultRate)
		fc, err := FaultCampaign(faulty, cfg.FaultTrials, logf)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s fault campaign: %w", strategy, err)
		}
		out.Faults = fc
	}
	return out, nil
}

// ConformanceAll runs every named strategy (nil = all registered) through
// the suite and returns the per-strategy results in order.
func ConformanceAll(strategies []string, cfg ConformanceConfig) ([]*ConformanceResult, error) {
	if strategies == nil {
		strategies = memctrl.Strategies()
	}
	out := make([]*ConformanceResult, 0, len(strategies))
	for _, s := range strategies {
		r, err := Conformance(s, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
