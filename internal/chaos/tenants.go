package chaos

import (
	"errors"
	"fmt"
	"sort"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/tenant"
)

// TenantConfig fully determines one multi-tenant chaos scenario: a tenant
// service over the engine-hosted device, a deterministic workload
// interleaved round-robin across tenants, an optional online key rotation
// of tenant 1 beginning mid-workload, and a power cut at a chosen
// device-wide write boundary.
type TenantConfig struct {
	Seed   int64
	Writes int // workload operations (roughly 3/4 writes, 1/4 reads)
	// Tenants is the number of provisioned tenants (default 3).
	Tenants int
	Shards  int
	Mode    memctrl.Mode
	// Strategy selects the metadata-persistence scheme on every shard
	// (empty = memctrl.DefaultStrategy).
	Strategy string
	// LinesPerTenant sizes each tenant's extent (default 48).
	LinesPerTenant uint64
	// CrashAt cuts power at this device-wide write boundary; negative
	// never. Tenant-layer guard and registry writes cross boundaries like
	// any other line, so the sweep hits mid-protocol points for free.
	CrashAt int
	// RotateAt begins an online key rotation of tenant 1 before this
	// workload op, with sweep steps interleaved into the remaining ops;
	// negative disables. Crashing after RotateAt exercises the
	// mid-rotation recovery path.
	RotateAt int
	// Logf, when non-nil, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

func (cfg TenantConfig) normalized() TenantConfig {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Strategy == "" {
		cfg.Strategy = memctrl.DefaultStrategy
	}
	if cfg.LinesPerTenant == 0 {
		cfg.LinesPerTenant = 48
	}
	return cfg
}

// TenantRepro renders the cmd/chaos invocation that replays cfg.
func TenantRepro(cfg TenantConfig) string {
	cfg = cfg.normalized()
	s := fmt.Sprintf("go run ./cmd/chaos -tenants -tenant-count %d -shards %d -seed %d -writes %d -mode %s -strategy %s",
		cfg.Tenants, cfg.Shards, cfg.Seed, cfg.Writes, ModeFlag(cfg.Mode), cfg.Strategy)
	if cfg.RotateAt >= 0 {
		s += fmt.Sprintf(" -rotate-at %d", cfg.RotateAt)
	}
	if cfg.CrashAt >= 0 {
		s += fmt.Sprintf(" -crash-at %d", cfg.CrashAt)
	}
	return s
}

// tenantKey identifies one acknowledged write in the per-tenant oracle.
type tenantKey struct {
	tenant uint32
	addr   uint64
}

// tenantLineFor is the deterministic content of tenant t's i-th workload
// write (splitmix-style over seed, tenant and op index, like lineFor).
func tenantLineFor(seed int64, t uint32, i int) nvm.Line {
	var l nvm.Line
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(t)*0x94d049bb133111eb + uint64(i+1)*0xbf58476d1ce4e5b9
	for w := 0; w < nvm.LineSize/8; w++ {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		for b := 0; b < 8; b++ {
			l[w*8+b] = byte(x >> (8 * b))
		}
	}
	return l
}

// tenantHarness is one multi-tenant scenario in progress.
type tenantHarness struct {
	cfg  TenantConfig
	logf func(format string, args ...any)
	eng  *device.Engine
	svc  *tenant.Service
	inj  *DeviceInjector
	ops  []wop // tenant-local addresses; op i belongs to tenant 1+i%T

	res          *DeviceResult
	committed    map[tenantKey]int
	inFlight     int
	inFlightKey  tenantKey
	crashOp      int
	rotating     bool // rotation of tenant 1 has begun
	rotationDone bool
}

func newTenantHarness(cfg TenantConfig) (*tenantHarness, error) {
	cfg = cfg.normalized()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System: config.TestSystem(),
			Mode:   cfg.Mode,
			Key:    []byte("chaos-harness-key"),
			Shards: cfg.Shards,
			Ctrl:   memctrl.Options{Strategy: cfg.Strategy},
		},
	})
	if err != nil {
		return nil, err
	}
	inj := NewDeviceInjector(cfg.CrashAt)
	svc, err := tenant.New(eng, tenant.Options{MasterKey: []byte("chaos-tenant-master")})
	if err != nil {
		eng.Close()
		return nil, err
	}
	for t := 1; t <= cfg.Tenants; t++ {
		// Quota 0 (unlimited): the oracle wants every op admitted, and the
		// quota path has its own tests.
		if _, err := svc.Provision(uint32(t), cfg.LinesPerTenant, 0); err != nil {
			eng.Close()
			return nil, err
		}
	}
	// Hooks go in only after provisioning: the registry setup is the
	// fixture, the workload is the scenario, so boundary numbering starts
	// at the first workload write.
	if err := eng.SetShardHooks(inj.ShardHooks(cfg.Shards)); err != nil {
		eng.Close()
		return nil, err
	}
	return &tenantHarness{
		cfg:       cfg,
		logf:      logf,
		eng:       eng,
		svc:       svc,
		inj:       inj,
		ops:       genOps(cfg.Seed, cfg.Writes, cfg.LinesPerTenant),
		res:       &DeviceResult{CrashBoundary: -1, CrashShard: -1},
		committed: make(map[tenantKey]int),
		inFlight:  -1,
		crashOp:   -1,
	}, nil
}

func (h *tenantHarness) tenantOf(i int) uint32 {
	return uint32(1 + i%h.cfg.Tenants)
}

// runOp executes workload op i: the data op itself, preceded by the
// rotation kickoff at RotateAt and followed by a rotation sweep step
// while a rotation is in progress.
func (h *tenantHarness) runOp(i int) error {
	// ErrRotating is tolerated on the kickoff: a crash during the kickoff's
	// record persist may have landed the flag durably before the replay
	// re-runs this op.
	if h.cfg.RotateAt >= 0 && i == h.cfg.RotateAt && !h.rotating {
		if err := h.svc.Rotate(1); err != nil && !errors.Is(err, tenant.ErrRotating) {
			return fmt.Errorf("rotate kickoff: %w", err)
		}
		h.rotating = true
	}
	o := h.ops[i]
	t := h.tenantOf(i)
	var err error
	if o.kind == opWrite {
		line := tenantLineFor(h.cfg.Seed, t, i)
		_, err = h.svc.Write(t, o.addr, &line)
	} else {
		_, _, err = h.svc.Read(t, o.addr)
	}
	if err != nil {
		return err
	}
	if h.rotating && !h.rotationDone {
		_, done, serr := h.svc.RotateStep(1, 2)
		if serr != nil && !errors.Is(serr, tenant.ErrNotRotating) {
			return serr
		}
		if done {
			h.rotationDone = true
		}
	}
	return nil
}

// readCheck verifies every acknowledged write of every tenant reads back
// exactly; with inFlightExempt the one write interrupted by the crash may
// hold either its old or its new value.
func (h *tenantHarness) readCheck(phase string, inFlightExempt bool) {
	res := h.res
	keys := make([]tenantKey, 0, len(h.committed))
	for k := range h.committed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].addr < keys[j].addr
	})
	for _, k := range keys {
		got, _, rdErr := h.svc.Read(k.tenant, k.addr)
		if rdErr != nil {
			res.violate("%s: tenant %d read %#x (committed op %d) failed: %v",
				phase, k.tenant, k.addr, h.committed[k], rdErr)
			continue
		}
		want := tenantLineFor(h.cfg.Seed, k.tenant, h.committed[k])
		if inFlightExempt && h.inFlight >= 0 && k == h.inFlightKey {
			if got != want && got != tenantLineFor(h.cfg.Seed, k.tenant, h.inFlight) {
				res.violate("%s: tenant %d in-flight line %#x holds neither old (op %d) nor new (op %d)",
					phase, k.tenant, k.addr, h.committed[k], h.inFlight)
			}
			continue
		}
		if got != want {
			res.violate("%s: tenant %d silent corruption at %#x: committed op %d does not read back",
				phase, k.tenant, k.addr, h.committed[k])
		}
	}
	if inFlightExempt && h.inFlight >= 0 {
		if _, ok := h.committed[h.inFlightKey]; !ok {
			got, _, rdErr := h.svc.Read(h.inFlightKey.tenant, h.inFlightKey.addr)
			switch {
			case rdErr != nil:
				res.violate("%s: read in-flight tenant %d line %#x failed: %v",
					phase, h.inFlightKey.tenant, h.inFlightKey.addr, rdErr)
			case got != (nvm.Line{}) && got != tenantLineFor(h.cfg.Seed, h.inFlightKey.tenant, h.inFlight):
				res.violate("%s: in-flight cold line tenant %d %#x is neither zero nor the new value",
					phase, h.inFlightKey.tenant, h.inFlightKey.addr)
			}
		}
	}
}

// isolationCheck asserts that no tenant can open another tenant's lines:
// the cryptographic barrier (CrossCheck: foreign ciphertext must fail
// every admissible MAC) and the namespace barrier (out-of-extent
// addresses fail with a typed RangeError). Run at every crash point, it
// is the "no cross-tenant read ever succeeds" half of the oracle.
func (h *tenantHarness) isolationCheck(phase string) {
	res := h.res
	n := uint32(h.cfg.Tenants)
	for a := uint32(1); a <= n; a++ {
		v := a%n + 1
		for line := uint64(0); line < h.cfg.LinesPerTenant; line += 7 {
			if err := h.svc.CrossCheck(a, v, line*nvm.LineSize); err != nil {
				res.violate("%s: %v", phase, err)
			}
		}
		var re *tenant.RangeError
		if _, _, err := h.svc.Read(a, h.cfg.LinesPerTenant*nvm.LineSize); !errors.As(err, &re) {
			res.violate("%s: tenant %d out-of-extent read returned %v, want RangeError", phase, a, err)
		}
	}
}

// finishRotation drives tenant 1's rotation sweep to completion with
// injection disarmed (rotation must survive any crash and then complete).
func (h *tenantHarness) finishRotation() {
	if !h.rotating || h.rotationDone {
		return
	}
	for {
		_, done, err := h.svc.RotateStep(1, 16)
		if err != nil {
			if errors.Is(err, tenant.ErrNotRotating) {
				break
			}
			h.res.violate("rotation completion: %v", err)
			return
		}
		if done {
			break
		}
	}
	h.rotationDone = true
}

// run executes the scenario: the workload (with optional mid-workload
// rotation and crash), crash recovery through the service, the per-tenant
// acked-write oracle and the isolation oracle, rotation completion,
// replay of the interrupted tail, Flush + VerifyAll + per-tenant verify,
// a clean crash/recover round-trip, and a final strict check.
func (h *tenantHarness) run() (*DeviceResult, error) {
	cfg, res := h.cfg, h.res

	var powerErr *device.PowerError
	for i := 0; i < len(h.ops); i++ {
		opErr := h.runOp(i)
		if errors.As(opErr, &powerErr) {
			res.Crashed = true
			res.CrashBoundary = powerErr.Boundary
			res.CrashShard = powerErr.Shard
			h.crashOp = i
			if h.ops[i].kind == opWrite {
				h.inFlight = i
				h.inFlightKey = tenantKey{h.tenantOf(i), h.ops[i].addr}
			}
			break
		}
		if opErr != nil {
			res.OpErrors++
			res.violate("op %d (tenant %d %v %#x): unexpected error: %v",
				i, h.tenantOf(i), h.ops[i].kind, h.ops[i].addr, opErr)
			continue
		}
		if h.ops[i].kind == opWrite {
			h.committed[tenantKey{h.tenantOf(i), h.ops[i].addr}] = i
		}
	}
	res.Boundaries = h.inj.Boundaries()

	if res.Crashed {
		h.logf("power loss at device boundary %d (op %d, shard %d)", res.CrashBoundary, h.crashOp, res.CrashShard)
		if err := h.svc.Crash(); err != nil {
			res.violate("Crash() after power loss: %v", err)
			return res, nil
		}
		h.inj.Disarm()
		rep, rerr := h.svc.Recover()
		if rerr != nil {
			res.violate("Recover failed: %v", rerr)
			return res, nil
		}
		res.Report = rep
		for sid, sr := range rep.Shards {
			if sr == nil {
				res.violate("shard %d: recovery report missing", sid)
				continue
			}
			for _, fb := range sr.FailedBlocks {
				res.violate("shard %d: recovery lost tracked block %#x: %s", sid, fb.Addr, fb.Reason)
			}
			for _, slot := range sr.LostSlots {
				res.violate("shard %d: recovery lost shadow slot %d entirely", sid, slot)
			}
		}
		// The crash may have landed mid-rotation; the persisted epoch and
		// Rotating flag decide, not our volatile belief.
		if h.rotating {
			st, err := h.svc.RotateStatus(1)
			if err != nil {
				res.violate("RotateStatus after recovery: %v", err)
			} else {
				h.rotationDone = !st.Rotating
			}
		}
		h.readCheck("post-recovery", true)
		h.isolationCheck("post-recovery")
		h.finishRotation()
		// Replay the interrupted operation and the rest of the workload.
		for i := h.crashOp; i >= 0 && i < len(h.ops); i++ {
			if opErr := h.runOp(i); opErr != nil {
				res.OpErrors++
				res.violate("replay op %d (tenant %d %v %#x): unexpected error: %v",
					i, h.tenantOf(i), h.ops[i].kind, h.ops[i].addr, opErr)
				continue
			}
			if h.ops[i].kind == opWrite {
				h.committed[tenantKey{h.tenantOf(i), h.ops[i].addr}] = i
			}
		}
	} else {
		h.inj.Disarm()
		h.readCheck("post-workload", false)
		h.isolationCheck("post-workload")
	}
	h.finishRotation()
	if cfg.RotateAt >= 0 && cfg.RotateAt < len(h.ops) {
		st, err := h.svc.RotateStatus(1)
		switch {
		case err != nil:
			res.violate("final RotateStatus: %v", err)
		case st.Rotating:
			res.violate("rotation never completed (cursor %d of %d)", st.Cursor, st.DataLines)
		case st.Epoch != 2:
			res.violate("tenant 1 epoch %d after one rotation, want 2", st.Epoch)
		}
	}

	// Settle and verify: the device's own integrity sweep, then every
	// tenant's MACs under its current epochs.
	if err := h.svc.Flush(); err != nil {
		res.violate("Flush: %v", err)
		return res, nil
	}
	if err := h.svc.VerifyAll(); err != nil {
		res.violate("VerifyAll after replay: %v", err)
	}
	for t := 1; t <= cfg.Tenants; t++ {
		if err := h.svc.VerifyTenant(uint32(t)); err != nil {
			res.violate("VerifyTenant(%d): %v", t, err)
		}
	}

	// A clean crash/recover round-trip on the flushed image must be
	// lossless for every tenant.
	if err := h.svc.Crash(); err != nil {
		res.violate("clean-round Crash: %v", err)
	} else {
		rep, err := h.svc.Recover()
		switch {
		case err != nil:
			res.violate("clean-round Recover: %v", err)
		case !rep.Clean():
			res.violate("clean-round recovery lost blocks: %d failed, %d lost slots",
				rep.FailedBlocks(), rep.LostSlots())
		}
	}
	h.readCheck("final", false)
	h.isolationCheck("final")
	return res, nil
}

// TenantRun executes one multi-tenant scenario closed-loop and checks the
// per-tenant acknowledged-write oracle, the cross-tenant isolation
// oracle, and rotation completion under crashes.
func TenantRun(cfg TenantConfig) (*DeviceResult, error) {
	h, err := newTenantHarness(cfg)
	if err != nil {
		return nil, err
	}
	defer h.eng.Close()
	return h.run()
}

// TenantCrashSweep probes the workload for its boundary count, then
// replays it crashing at every stride-th boundary — including, when
// RotateAt is set, the boundaries inside the rotation window.
func TenantCrashSweep(base TenantConfig, stride int, logf func(string, ...any)) (*CampaignResult, error) {
	if stride <= 0 {
		stride = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	probe := base
	probe.CrashAt = -1
	pres, err := TenantRun(probe)
	if err != nil {
		return nil, err
	}
	out := &CampaignResult{Boundaries: pres.Boundaries}
	out.collectTenant(probe, pres)
	logf("tenant crash sweep: %d tenants, %d shards, %d workload boundaries, stride %d",
		base.normalized().Tenants, base.normalized().Shards, pres.Boundaries, stride)
	for k := 0; k < pres.Boundaries; k += stride {
		cfg := base
		cfg.CrashAt = k
		res, err := TenantRun(cfg)
		if err != nil {
			return nil, err
		}
		if !res.Crashed {
			logf("note: crash-at %d never fired (run saw %d boundaries)", k, res.Boundaries)
		}
		out.collectTenant(cfg, res)
	}
	return out, nil
}

func (c *CampaignResult) collectTenant(cfg TenantConfig, res *DeviceResult) {
	c.Runs++
	if len(res.Violations) > 0 {
		c.Failures = append(c.Failures, Failure{Repro: TenantRepro(cfg), Violations: res.Violations})
	}
}

// TenantConformance runs the tenant crash sweep — rotation window armed,
// so mid-rotation crash points are part of the sweep — for one strategy.
func TenantConformance(strategy string, cfg TenantConfig, stride int) (*CampaignResult, error) {
	cfg.Strategy = strategy
	return TenantCrashSweep(cfg, stride, cfg.Logf)
}

// TenantConformanceAll runs the tenant sweep across every registered
// metadata-persistence strategy.
func TenantConformanceAll(cfg TenantConfig, stride int) (map[string]*CampaignResult, error) {
	out := make(map[string]*CampaignResult, len(memctrl.Strategies()))
	for _, strategy := range memctrl.Strategies() {
		res, err := TenantConformance(strategy, cfg, stride)
		if err != nil {
			return nil, err
		}
		out[strategy] = res
	}
	return out, nil
}
