package chaos

import (
	"strings"
	"testing"

	"soteria/internal/memctrl"
)

// probeBoundaries runs the scenario without a crash to learn its boundary
// count, the way the sweeps do.
func probeBoundaries(t *testing.T, cfg Config) int {
	t.Helper()
	cfg.CrashAt, cfg.NestedCrashAt = -1, -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("probe violations: %v", res.Violations)
	}
	if res.Boundaries == 0 {
		t.Fatal("probe saw no boundaries")
	}
	return res.Boundaries
}

func TestCleanRunNoViolations(t *testing.T) {
	for _, mode := range []memctrl.Mode{memctrl.ModeNonSecure, memctrl.ModeBaseline, memctrl.ModeSRC, memctrl.ModeSAC} {
		res, err := Run(Config{Seed: 1, Writes: 40, Mode: mode, CrashAt: -1, NestedCrashAt: -1})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Violations) > 0 {
			t.Errorf("%v: violations on a clean run: %v", mode, res.Violations)
		}
		if res.Crashed {
			t.Errorf("%v: crashed without a crash point", mode)
		}
	}
}

func TestCrashSweepFindsNoViolations(t *testing.T) {
	res, err := CrashSweep(Config{Seed: 2, Writes: 30, Mode: memctrl.ModeSRC, CrashAt: -1, NestedCrashAt: -1}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boundaries == 0 || res.Runs < 3 {
		t.Fatalf("sweep too small: %d runs, %d boundaries", res.Runs, res.Boundaries)
	}
	for _, f := range res.Failures {
		t.Errorf("sweep failure: %s: %v", f.Repro, f.Violations)
	}
}

func TestNestedCrashRecovers(t *testing.T) {
	base := Config{Seed: 3, Writes: 40, Mode: memctrl.ModeSRC, NestedCrashAt: -1}
	base.CrashAt = probeBoundaries(t, base) / 2
	for _, k := range []int{0, 3, 9} {
		cfg := base
		cfg.NestedCrashAt = k
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("nested at %d: %v", k, err)
		}
		if !res.Crashed {
			t.Fatalf("nested at %d: first crash never fired", k)
		}
		if len(res.Violations) > 0 {
			t.Errorf("nested at %d: violations: %v\nrepro: %s", k, res.Violations, Repro(cfg))
		}
	}
}

func TestShadowHalfFaultAbsorbed(t *testing.T) {
	cfg := Config{Seed: 4, Writes: 40, Mode: memctrl.ModeSRC, NestedCrashAt: -1, ShadowFaults: 2}
	cfg.CrashAt = probeBoundaries(t, Config{Seed: 4, Writes: 40, Mode: memctrl.ModeSRC}) / 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("half faults not absorbed: %v\nrepro: %s", res.Violations, Repro(cfg))
	}
	if res.Report == nil || res.Report.HalfRepairs == 0 {
		t.Fatalf("expected half repairs to fire (faults %v)", res.ShadowFaultNotes)
	}
}

func TestBrokenHalfRepairIsCaught(t *testing.T) {
	cfg := Config{Seed: 4, Writes: 40, Mode: memctrl.ModeSRC, NestedCrashAt: -1, ShadowFaults: 2, BreakHalfRepair: true}
	cfg.CrashAt = probeBoundaries(t, Config{Seed: 4, Writes: 40, Mode: memctrl.ModeSRC}) / 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("sabotaged recovery produced no violations — the harness is blind")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, Writes: 40, Mode: memctrl.ModeSAC, NestedCrashAt: -1, FaultRate: 0.02}
	cfg.CrashAt = 20
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Boundaries != b.Boundaries || a.CrashBoundary != b.CrashBoundary ||
		len(a.Faults) != len(b.Faults) || len(a.Violations) != len(b.Violations) ||
		a.OpErrors != b.OpErrors {
		t.Fatalf("replay diverged:\n  a: %+v\n  b: %+v", a, b)
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d diverged: %v vs %v", i, a.Faults[i], b.Faults[i])
		}
	}
}

func TestModeFlagRoundTrip(t *testing.T) {
	for _, m := range []memctrl.Mode{memctrl.ModeNonSecure, memctrl.ModeBaseline, memctrl.ModeSRC, memctrl.ModeSAC} {
		got, err := ParseMode(ModeFlag(m))
		if err != nil || got != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, ModeFlag(m), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted a bogus mode")
	}
}

func TestReproIncludesSchedule(t *testing.T) {
	cfg := Config{Seed: 9, Writes: 50, Mode: memctrl.ModeSAC, CrashAt: 7, NestedCrashAt: 3,
		FaultRate: 0.5, ShadowFaults: 1, BreakHalfRepair: true}
	r := Repro(cfg)
	for _, want := range []string{"-seed 9", "-writes 50", "-mode sac", "-crash-at 7",
		"-crash-at2 3", "-fault-rate 0.5", "-shadow-faults 1", "-break-half-repair"} {
		if !strings.Contains(r, want) {
			t.Errorf("repro %q missing %q", r, want)
		}
	}
}
