package chaos

import (
	"fmt"
	"sort"

	"soteria/internal/device"
	"soteria/internal/memctrl"
	"soteria/internal/sim"
)

// replayVersion is bumped on any change to the ReplayTrace layout.
const replayVersion = 1

// ReplayTrace is the time-travel record of one crashed sharded-device
// scenario: the full scenario config, the engine checkpoint taken nearest
// before the fault, the oracle state at that checkpoint, and the canonical
// event trace of the original run. DeviceReplay restores the checkpoint
// and re-executes the workload from there; because the engine is
// deterministic, the replay crosses the same boundaries, crashes at the
// same event and produces a byte-identical failure Summary.
type ReplayTrace struct {
	// Cfg names the scenario (Logf is not serialized).
	Cfg DeviceConfig
	// CrashOp is the workload op index the power loss interrupted.
	CrashOp int
	// CkptOp is the workload op index at which Ckpt was taken (always
	// <= CrashOp: recording stops at the crash).
	CkptOp int
	// CkptBoundary is the device-wide write-boundary count at the
	// checkpoint; the replay injector resumes numbering there.
	CkptBoundary int
	// CkptOpErrors, CkptViolations and CkptCommitted restore the oracle
	// state accumulated before the checkpoint.
	CkptOpErrors   int
	CkptViolations []string
	CkptCommitted  map[uint64]int
	// Ckpt is the sealed device.Engine checkpoint.
	Ckpt []byte
	// Events is the canonical event trace of the full original run
	// (per-shard dispatch streams concatenated in shard order).
	Events []device.TraceEvent
}

// Encode seals the trace for storage (cmd/chaos -replay reads it back).
func (t *ReplayTrace) Encode() []byte {
	w := &sim.SnapW{}
	w.I64(t.Cfg.Seed)
	w.U32(uint32(t.Cfg.Writes))
	w.U32(uint32(t.Cfg.Shards))
	w.U8(uint8(t.Cfg.Mode))
	w.String(t.Cfg.Strategy)
	w.I64(int64(t.Cfg.CrashAt))
	w.I64(int64(t.CrashOp))
	w.U32(uint32(t.CkptOp))
	w.U32(uint32(t.CkptBoundary))
	w.U32(uint32(t.CkptOpErrors))
	w.U32(uint32(len(t.CkptViolations)))
	for _, v := range t.CkptViolations {
		w.String(v)
	}
	addrs := make([]uint64, 0, len(t.CkptCommitted))
	for a := range t.CkptCommitted {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U32(uint32(len(addrs)))
	for _, a := range addrs {
		w.U64(a)
		w.U32(uint32(t.CkptCommitted[a]))
	}
	w.Bytes(t.Ckpt)
	device.AppendTrace(w, t.Events)
	return sim.Seal(sim.SnapKindTrace, replayVersion, w.Data())
}

// DecodeReplayTrace is the inverse of Encode. Corrupted or truncated input
// returns an error, never a panic, and never a partially filled trace.
func DecodeReplayTrace(data []byte) (*ReplayTrace, error) {
	payload, err := sim.Open(sim.SnapKindTrace, replayVersion, data)
	if err != nil {
		return nil, err
	}
	r := sim.NewSnapR(payload)
	t := &ReplayTrace{}
	t.Cfg.Seed = r.I64()
	t.Cfg.Writes = int(r.U32())
	t.Cfg.Shards = int(r.U32())
	t.Cfg.Mode = memctrl.Mode(r.U8())
	t.Cfg.Strategy = r.String()
	t.Cfg.CrashAt = int(r.I64())
	t.CrashOp = int(r.I64())
	t.CkptOp = int(r.U32())
	t.CkptBoundary = int(r.U32())
	t.CkptOpErrors = int(r.U32())
	nv := r.Count(4)
	if nv > 0 {
		t.CkptViolations = make([]string, nv)
		for i := range t.CkptViolations {
			t.CkptViolations[i] = r.String()
		}
	}
	nc := r.Count(8 + 4)
	t.CkptCommitted = make(map[uint64]int, nc)
	for i := 0; i < nc; i++ {
		a := r.U64()
		t.CkptCommitted[a] = int(r.U32())
	}
	t.Ckpt = append([]byte(nil), r.Bytes()...)
	t.Events = device.ReadTrace(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return t, nil
}

// DeviceRunTraced runs one scenario with event tracing and periodic
// checkpoints. When the scenario crashes, the returned ReplayTrace holds
// everything DeviceReplay needs to re-execute it from the checkpoint
// nearest the fault; a crash-free run returns a nil trace.
func DeviceRunTraced(cfg DeviceConfig) (*DeviceResult, *ReplayTrace, error) {
	h, err := newDeviceHarness(cfg, true)
	if err != nil {
		return nil, nil, err
	}
	defer h.eng.Close()

	// Checkpoint cadence: 8 checkpoints across the workload, so the replay
	// re-executes at most ~1/8th of it. Op 0 always has one — a crash on
	// the very first op still replays.
	every := h.cfg.Writes / 8
	if every < 1 {
		every = 1
	}
	tr := &ReplayTrace{CkptOp: -1}
	onCkpt := func(op int) error {
		ckpt, err := h.eng.Checkpoint()
		if err != nil {
			return fmt.Errorf("chaos: checkpoint at op %d: %w", op, err)
		}
		tr.CkptOp = op
		tr.CkptBoundary = h.inj.Boundaries()
		tr.CkptOpErrors = h.res.OpErrors
		tr.CkptViolations = append([]string(nil), h.res.Violations...)
		committed := make(map[uint64]int, len(h.committed))
		for a, i := range h.committed {
			committed[a] = i
		}
		tr.CkptCommitted = committed
		tr.Ckpt = ckpt
		return nil
	}
	res, err := h.run(0, every, onCkpt)
	if err != nil || !res.Crashed || tr.CkptOp < 0 {
		return res, nil, err
	}
	tr.Cfg = h.cfg
	tr.Cfg.Logf = nil
	tr.CrashOp = h.crashOp
	tr.Events = h.eng.Trace()
	return res, tr, nil
}

// DeviceReplay re-executes a recorded scenario from its checkpoint: the
// engine state is restored byte-for-byte, the injector's boundary counter
// resumes at the checkpoint's count, and the workload re-runs from the
// checkpoint op through the crash, recovery and the full invariant oracle.
// The returned DeviceResult.Summary() is byte-identical to the original
// failing run's.
func DeviceReplay(tr *ReplayTrace, logf func(format string, args ...any)) (*DeviceResult, error) {
	cfg := tr.Cfg
	cfg.Logf = logf
	h, err := newDeviceHarness(cfg, true)
	if err != nil {
		return nil, err
	}
	defer h.eng.Close()
	if err := h.eng.Restore(tr.Ckpt); err != nil {
		return nil, fmt.Errorf("chaos: restore checkpoint: %w", err)
	}
	// Hooks survive a controller restore, but the trackers' seal state is
	// volatile; re-install fresh ones (the checkpoint was taken at an op
	// boundary, where every seal depth is zero).
	if err := h.eng.SetShardHooks(h.inj.ShardHooks(h.cfg.Shards)); err != nil {
		return nil, err
	}
	h.inj.Preset(tr.CkptBoundary)
	h.res.OpErrors = tr.CkptOpErrors
	h.res.Violations = append([]string(nil), tr.CkptViolations...)
	for a, i := range tr.CkptCommitted {
		h.committed[a] = i
	}
	res, err := h.run(tr.CkptOp, 0, nil)
	if err != nil {
		return nil, err
	}
	checkReplayedTrace(res, tr.Events, h.eng.Trace())
	return res, nil
}

// checkReplayedTrace asserts the replay dispatched exactly the suffix of
// the original event trace: per shard, the replayed stream must equal the
// recorded stream's tail (sequence numbers, clocks and transaction IDs are
// all restored from the checkpoint, so the match is field-for-field). Any
// divergence is a violation — the replay would not be a faithful
// re-execution of the recorded failure.
func checkReplayedTrace(res *DeviceResult, orig, replayed []device.TraceEvent) {
	byShard := func(evs []device.TraceEvent) map[int][]device.TraceEvent {
		m := make(map[int][]device.TraceEvent)
		for _, ev := range evs {
			m[ev.Shard] = append(m[ev.Shard], ev)
		}
		return m
	}
	om, rm := byShard(orig), byShard(replayed)
	shards := make([]int, 0, len(rm))
	for s := range rm {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		o, r := om[s], rm[s]
		if len(r) > len(o) {
			res.violate("replay shard %d dispatched %d events, original only %d", s, len(r), len(o))
			continue
		}
		tail := o[len(o)-len(r):]
		for i := range r {
			if r[i] != tail[i] {
				res.violate("replay diverged on shard %d at event %d: recorded %+v, replayed %+v",
					s, tail[i].Seq, tail[i], r[i])
				break
			}
		}
	}
}

// ReplayRepro renders the one-line cmd/chaos invocation that re-executes a
// saved replay trace.
func ReplayRepro(path string) string {
	return fmt.Sprintf("go run ./cmd/chaos -replay %s", path)
}
