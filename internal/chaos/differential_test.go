package chaos

import (
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// TestDifferentialStrategies drives every registered strategy through the
// identical seeded workload, cuts power at the same operation boundary
// (operation granularity, so the cut point is strategy-independent —
// device-write boundaries are not comparable across schemes), recovers,
// replays the tail, and demands byte-identical data images. The strategies
// are allowed — expected — to differ only in their metadata persistence
// stats, which the test cross-checks as a sanity signature of each scheme.
func TestDifferentialStrategies(t *testing.T) {
	const ops = 120
	for _, seed := range []int64{3, 17} {
		for _, crashAfter := range []int{10, 57, 111} {
			// One deterministic op schedule shared by every strategy.
			rng := rand.New(rand.NewSource(seed))
			sys := config.TestSystem()
			layout := sysDataBlocks(t, sys)
			ws := make([]uint64, 48)
			for i := range ws {
				ws[i] = uint64(rng.Int63n(int64(layout))) * nvm.LineSize
			}
			type op struct {
				write bool
				addr  uint64
			}
			sched := make([]op, ops)
			for i := range sched {
				sched[i] = op{write: i == 0 || rng.Float64() >= 0.25, addr: ws[rng.Intn(len(ws))]}
			}

			type outcome struct {
				image       map[uint64]nvm.Line
				shadowOps   uint64
				recoveryWr  uint64
				metadataWr  uint64
			}
			results := map[string]outcome{}
			for _, strategy := range memctrl.Strategies() {
				ctrl, err := memctrl.New(sys, memctrl.ModeSRC, []byte("diff-key"), memctrl.Options{Strategy: strategy})
				if err != nil {
					t.Fatal(err)
				}
				var now sim.Time
				runOp := func(i int) {
					if sched[i].write {
						line := lineFor(seed, i)
						if now, err = ctrl.WriteBlock(now, sched[i].addr, &line); err != nil {
							t.Fatalf("%s op %d: %v", strategy, i, err)
						}
					} else if _, now, err = ctrl.ReadBlock(now, sched[i].addr); err != nil {
						t.Fatalf("%s op %d: %v", strategy, i, err)
					}
				}
				for i := 0; i <= crashAfter; i++ {
					runOp(i)
				}
				if err := ctrl.Crash(); err != nil {
					t.Fatalf("%s crash: %v", strategy, err)
				}
				rep, err := ctrl.Recover()
				if err != nil {
					t.Fatalf("%s recover: %v", strategy, err)
				}
				if len(rep.FailedBlocks) > 0 || len(rep.LostSlots) > 0 {
					t.Fatalf("%s recovery lost data with no faults injected: %+v", strategy, rep)
				}
				for i := crashAfter + 1; i < ops; i++ {
					runOp(i)
				}
				now = ctrl.FlushAll(now)
				if err := ctrl.VerifyAll(); err != nil {
					t.Fatalf("%s verify: %v", strategy, err)
				}
				image := map[uint64]nvm.Line{}
				for _, a := range ws {
					got, n2, err := ctrl.ReadBlock(now, a)
					if err != nil {
						t.Fatalf("%s read %#x: %v", strategy, a, err)
					}
					now = n2
					image[a] = got
				}
				st := ctrl.Stats()
				results[strategy] = outcome{
					image:      image,
					shadowOps:  st.NVMWrites[memctrl.WCShadow],
					recoveryWr: st.NVMWrites[memctrl.WCRecovery],
					metadataWr: st.NVMWrites[memctrl.WCMetadata],
				}
			}

			ref := results["soteria"]
			for strategy, got := range results {
				for a, want := range ref.image {
					if got.image[a] != want {
						t.Errorf("seed %d crash %d: %s data image diverges from soteria at %#x",
							seed, crashAfter, strategy, a)
						break
					}
				}
			}

			// The metadata signatures must differ in the scheme-defining
			// ways: tracking tables write shadow lines, Triad writes none
			// but pays recovery rebuild writes.
			if ref.shadowOps == 0 {
				t.Errorf("soteria wrote no shadow lines")
			}
			if results["anubis-shadow"].shadowOps <= ref.shadowOps {
				t.Errorf("anubis (2 lines/update) wrote %d shadow lines, soteria %d — expected more",
					results["anubis-shadow"].shadowOps, ref.shadowOps)
			}
			for _, triad := range []string{"triad-nvm", "triad-nvm-2"} {
				if results[triad].shadowOps != 0 {
					t.Errorf("%s wrote %d shadow lines; the scheme keeps no tracking table", triad, results[triad].shadowOps)
				}
				if results[triad].recoveryWr == 0 {
					t.Errorf("%s performed no recovery rebuild writes", triad)
				}
			}
			if results["triad-nvm-2"].metadataWr < results["triad-nvm"].metadataWr {
				t.Errorf("triad-nvm-2 (%d metadata writes) should persist at least as much as triad-nvm (%d)",
					results["triad-nvm-2"].metadataWr, results["triad-nvm"].metadataWr)
			}
		}
	}
}

func sysDataBlocks(t *testing.T, sys config.SystemConfig) uint64 {
	t.Helper()
	ctrl, err := memctrl.New(sys, memctrl.ModeSRC, []byte("probe"), memctrl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl.Layout().DataBlocks
}
