package chaos

import (
	"testing"

	"soteria/internal/memctrl"
)

// TestDeviceCrashSweepQuick is the sharded-device analogue of the
// single-controller sweep tests: crash at every stride-th device-wide
// boundary, recover, verify — zero violations expected.
func TestDeviceCrashSweepQuick(t *testing.T) {
	for _, shards := range []int{1, 4} {
		res, err := DeviceCrashSweep(DeviceConfig{
			Seed:    1,
			Writes:  40,
			Shards:  shards,
			Mode:    memctrl.ModeSRC,
			CrashAt: -1,
		}, 5, t.Logf)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Boundaries == 0 {
			t.Fatalf("shards=%d: probe saw no boundaries", shards)
		}
		for _, f := range res.Failures {
			t.Errorf("shards=%d: %s: %v", shards, f.Repro, f.Violations)
		}
	}
}

// TestDeviceRunDeterministic pins the closed-loop determinism contract:
// the same DeviceConfig crashes at the same boundary on the same shard
// and observes the same counts, every time.
func TestDeviceRunDeterministic(t *testing.T) {
	cfg := DeviceConfig{Seed: 7, Writes: 50, Shards: 4, Mode: memctrl.ModeSAC, CrashAt: 20}
	first, err := DeviceRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Crashed {
		t.Fatalf("crash-at %d never fired (%d boundaries)", cfg.CrashAt, first.Boundaries)
	}
	if len(first.Violations) > 0 {
		t.Fatalf("violations: %v", first.Violations)
	}
	for i := 0; i < 2; i++ {
		again, err := DeviceRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if again.CrashBoundary != first.CrashBoundary || again.CrashShard != first.CrashShard ||
			again.Boundaries != first.Boundaries {
			t.Fatalf("run %d diverged: crash %d/shard %d/%d boundaries, want %d/%d/%d",
				i, again.CrashBoundary, again.CrashShard, again.Boundaries,
				first.CrashBoundary, first.CrashShard, first.Boundaries)
		}
	}
}
