package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// CheckpointRun proves restore-then-recover is indistinguishable from
// straight-line recover for one crash point. It drives cfg's workload on
// controller A to the crash (or to completion when CrashAt is negative),
// serializes A with Checkpoint, restores the bytes into a fresh controller
// B, and then demands:
//
//   - B's re-checkpoint is byte-identical to A's (golden round-trip);
//   - A.Recover() and B.Recover() report identical accounting;
//   - A and B are byte-identical again after both recoveries;
//   - B passes the full acknowledged-write oracle: committed writes read
//     back (in-flight write old-or-new), the interrupted tail replays,
//     FlushAll + VerifyAll succeed, and a final strict read-back holds.
//
// Faults and nested crashes stay on Run; this leg is about checkpoint
// fidelity, so the scenario is crash-only.
func CheckpointRun(cfg Config) (*Result, error) {
	if cfg.FaultRate > 0 || cfg.ShadowFaults > 0 || cfg.BreakHalfRepair || cfg.NestedCrashAt >= 0 {
		return nil, fmt.Errorf("chaos: CheckpointRun is crash-only (no faults, no nested crash)")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{CrashBoundary: -1}

	newCtrl := func() (*memctrl.Controller, error) {
		return memctrl.New(config.TestSystem(), cfg.Mode, []byte("chaos-harness-key"),
			memctrl.Options{Strategy: cfg.Strategy})
	}
	ctrlA, err := newCtrl()
	if err != nil {
		return nil, err
	}
	var dataLines uint64
	if l := ctrlA.Layout(); l != nil {
		dataLines = l.DataBlocks
	} else {
		dataLines = ctrlA.Device().Capacity() / nvm.LineSize
	}
	ops := genOps(cfg.Seed, cfg.Writes, dataLines)

	inj := NewInjector(ctrlA.Device(), rand.New(rand.NewSource(cfg.Seed^0x5eedfa11)), 0, 0)
	inj.CrashAt = cfg.CrashAt
	ctrlA.SetHook(inj)

	committed := make(map[uint64]int)
	var nowA sim.Time
	inFlight := -1
	var inFlightAddr uint64
	crashOp := -1

	for i := 0; i < len(ops); i++ {
		var opErr error
		pl, pan := guard(func() {
			o := ops[i]
			if o.kind == opWrite {
				line := lineFor(cfg.Seed, i)
				nowA, opErr = ctrlA.WriteBlock(nowA, o.addr, &line)
			} else {
				_, nowA, opErr = ctrlA.ReadBlock(nowA, o.addr)
			}
		})
		if pan != nil {
			res.violate("op %d (%v %#x): unexpected panic: %v", i, ops[i].kind, ops[i].addr, pan)
			return res, nil
		}
		if pl != nil {
			res.Crashed = true
			res.CrashBoundary = pl.Boundary
			crashOp = i
			if ops[i].kind == opWrite {
				inFlight = i
				inFlightAddr = ops[i].addr
			}
			break
		}
		if opErr != nil {
			res.OpErrors++
			res.violate("op %d (%v %#x): unexpected error: %v", i, ops[i].kind, ops[i].addr, opErr)
			continue
		}
		if ops[i].kind == opWrite {
			committed[ops[i].addr] = i
		}
	}
	res.Boundaries = inj.Boundary

	if res.Crashed {
		logf("power loss at boundary %d (op %d); checkpointing the crashed controller", res.CrashBoundary, crashOp)
		if err := ctrlA.Crash(); err != nil {
			res.violate("Crash() after power loss: %v", err)
			return res, nil
		}
	}
	inj.Disarm()

	// Serialize A (crashed or at rest) and restore into a fresh B.
	ckptA, err := ctrlA.Checkpoint()
	if err != nil {
		res.violate("Checkpoint of controller A: %v", err)
		return res, nil
	}
	ctrlB, err := newCtrl()
	if err != nil {
		return nil, err
	}
	if err := ctrlB.Restore(ckptA); err != nil {
		res.violate("Restore into fresh controller: %v", err)
		return res, nil
	}
	ckptB, err := ctrlB.Checkpoint()
	if err != nil {
		res.violate("re-Checkpoint of restored controller: %v", err)
		return res, nil
	}
	if !bytes.Equal(ckptA, ckptB) {
		res.violate("restored controller re-checkpoints differently (%d vs %d bytes)", len(ckptA), len(ckptB))
	}

	if res.Crashed {
		// Straight-line recover on A, restore-then-recover on B: the two
		// reports and the two post-recovery checkpoints must agree.
		repA, errA := recoverGuarded(res, "controller A", ctrlA)
		repB, errB := recoverGuarded(res, "restored controller B", ctrlB)
		if (errA == nil) != (errB == nil) {
			res.violate("recover outcomes diverge: A err %v, B err %v", errA, errB)
			return res, nil
		}
		if errA != nil {
			res.violate("Recover failed: %v", errA)
			return res, nil
		}
		res.Report = repB
		checkReport(cfg, res, repB)
		if repA != nil && repB != nil {
			if repA.TrackedEntries != repB.TrackedEntries ||
				repA.RecoveredBlocks != repB.RecoveredBlocks ||
				len(repA.FailedBlocks) != len(repB.FailedBlocks) ||
				len(repA.LostSlots) != len(repB.LostSlots) ||
				repA.HalfRepairs != repB.HalfRepairs {
				res.violate("recovery reports diverge: A tracked=%d recovered=%d failed=%d lost=%d repairs=%d, B tracked=%d recovered=%d failed=%d lost=%d repairs=%d",
					repA.TrackedEntries, repA.RecoveredBlocks, len(repA.FailedBlocks), len(repA.LostSlots), repA.HalfRepairs,
					repB.TrackedEntries, repB.RecoveredBlocks, len(repB.FailedBlocks), len(repB.LostSlots), repB.HalfRepairs)
			}
		}
		ckptA2, errA2 := ctrlA.Checkpoint()
		ckptB2, errB2 := ctrlB.Checkpoint()
		switch {
		case errA2 != nil || errB2 != nil:
			res.violate("post-recovery checkpoints: A err %v, B err %v", errA2, errB2)
		case !bytes.Equal(ckptA2, ckptB2):
			res.violate("post-recovery states diverge: straight-line recover and restore-then-recover checkpoint differently")
		}
	}

	// The restored controller must carry the workload forward: full oracle
	// pass on B.
	var nowB sim.Time
	readCheckB := func(phase string, inFlightExempt bool) {
		addrs := make([]uint64, 0, len(committed))
		for a := range committed {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			var got nvm.Line
			var rdErr error
			pl, pan := guard(func() { got, nowB, rdErr = ctrlB.ReadBlock(nowB, a) })
			if pan != nil || pl != nil {
				res.violate("%s: read %#x: panic %v / power loss %v", phase, a, pan, pl)
				return
			}
			if rdErr != nil {
				res.violate("%s: read %#x (committed op %d) failed: %v", phase, a, committed[a], rdErr)
				continue
			}
			want := lineFor(cfg.Seed, committed[a])
			if inFlightExempt && inFlight >= 0 && a == inFlightAddr {
				if got != want && got != lineFor(cfg.Seed, inFlight) {
					res.violate("%s: in-flight block %#x holds neither the old value (op %d) nor the new (op %d)",
						phase, a, committed[a], inFlight)
				}
				continue
			}
			if got != want {
				res.violate("%s: silent corruption at %#x: committed op %d does not read back on the restored controller",
					phase, a, committed[a])
			}
		}
	}

	if res.Crashed {
		readCheckB("post-restore-recovery", true)
		for i := crashOp; i >= 0 && i < len(ops); i++ {
			var opErr error
			pl, pan := guard(func() {
				o := ops[i]
				if o.kind == opWrite {
					line := lineFor(cfg.Seed, i)
					nowB, opErr = ctrlB.WriteBlock(nowB, o.addr, &line)
				} else {
					_, nowB, opErr = ctrlB.ReadBlock(nowB, o.addr)
				}
			})
			if pan != nil || pl != nil {
				res.violate("replay op %d: panic %v / power loss %v", i, pan, pl)
				return res, nil
			}
			if opErr != nil {
				res.OpErrors++
				res.violate("replay op %d (%v %#x): unexpected error: %v", i, ops[i].kind, ops[i].addr, opErr)
				continue
			}
			if ops[i].kind == opWrite {
				committed[ops[i].addr] = i
			}
		}
	} else {
		readCheckB("post-restore", false)
	}

	pl, pan := guard(func() { nowB = ctrlB.FlushAll(nowB) })
	if pan != nil || pl != nil {
		res.violate("FlushAll on restored controller: panic %v / power loss %v", pan, pl)
		return res, nil
	}
	if err := ctrlB.VerifyAll(); err != nil {
		res.violate("VerifyAll on restored controller: %v", err)
	}
	readCheckB("final", false)
	return res, nil
}

// recoverGuarded runs Recover under the PowerLoss guard (injection is
// disarmed here; any panic is a violation).
func recoverGuarded(res *Result, who string, ctrl *memctrl.Controller) (*memctrl.RecoveryReport, error) {
	var rep *memctrl.RecoveryReport
	var err error
	pl, pan := guard(func() { rep, err = ctrl.Recover() })
	if pan != nil {
		res.violate("%s Recover: unexpected panic: %v", who, pan)
		return nil, fmt.Errorf("panic: %v", pan)
	}
	if pl != nil {
		res.violate("%s Recover: power loss fired while disarmed", who)
		return nil, fmt.Errorf("power loss while disarmed")
	}
	return rep, err
}

// CheckpointSweep runs CheckpointRun at every stride-th crash boundary
// (plus a crash-free probe, which exercises checkpoint-at-rest). It is the
// fourth leg of the conformance suite: every strategy must prove that
// restoring a checkpoint of a crashed controller and recovering is
// indistinguishable from recovering in place, at every crash point.
func CheckpointSweep(base Config, stride int, logf func(string, ...any)) (*CampaignResult, error) {
	if stride <= 0 {
		stride = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	probe := base
	probe.CrashAt, probe.NestedCrashAt = -1, -1
	pres, err := CheckpointRun(probe)
	if err != nil {
		return nil, err
	}
	out := &CampaignResult{Boundaries: pres.Boundaries}
	out.collect(probe, pres)
	logf("checkpoint sweep: %d workload boundaries, stride %d", pres.Boundaries, stride)
	for k := 0; k < pres.Boundaries; k += stride {
		cfg := base
		cfg.CrashAt, cfg.NestedCrashAt = k, -1
		res, err := CheckpointRun(cfg)
		if err != nil {
			return nil, err
		}
		if !res.Crashed {
			logf("note: crash-at %d never fired (run saw %d boundaries)", k, res.Boundaries)
		}
		out.collect(cfg, res)
	}
	return out, nil
}
