package chaos

import (
	"fmt"
	"math/rand"

	"soteria/internal/memctrl"
)

// ModeFlag renders a mode as the cmd/chaos -mode flag value.
func ModeFlag(m memctrl.Mode) string {
	switch m {
	case memctrl.ModeNonSecure:
		return "nonsecure"
	case memctrl.ModeBaseline:
		return "baseline"
	case memctrl.ModeSAC:
		return "sac"
	default:
		return "src"
	}
}

// ParseMode is the inverse of ModeFlag.
func ParseMode(s string) (memctrl.Mode, error) {
	switch s {
	case "nonsecure":
		return memctrl.ModeNonSecure, nil
	case "baseline":
		return memctrl.ModeBaseline, nil
	case "src":
		return memctrl.ModeSRC, nil
	case "sac":
		return memctrl.ModeSAC, nil
	default:
		return 0, fmt.Errorf("chaos: unknown mode %q (want nonsecure|baseline|src|sac)", s)
	}
}

// Repro renders the cmd/chaos invocation that replays cfg exactly. Every
// parameter that shapes the scenario (seed, crash points, fault schedule)
// is on the line, so a reported failure is a one-command repro.
func Repro(cfg Config) string {
	strategy := cfg.Strategy
	if strategy == "" {
		strategy = memctrl.DefaultStrategy
	}
	s := fmt.Sprintf("go run ./cmd/chaos -seed %d -writes %d -mode %s -strategy %s",
		cfg.Seed, cfg.Writes, ModeFlag(cfg.Mode), strategy)
	if cfg.CrashAt >= 0 {
		s += fmt.Sprintf(" -crash-at %d", cfg.CrashAt)
	}
	if cfg.NestedCrashAt >= 0 {
		s += fmt.Sprintf(" -crash-at2 %d", cfg.NestedCrashAt)
	}
	if cfg.FaultRate > 0 {
		s += fmt.Sprintf(" -fault-rate %v", cfg.FaultRate)
	}
	if cfg.ShadowFaults > 0 {
		s += fmt.Sprintf(" -shadow-faults %d", cfg.ShadowFaults)
	}
	if cfg.BreakHalfRepair {
		s += " -break-half-repair"
	}
	return s
}

// Failure couples one failing scenario's violations with its repro command.
type Failure struct {
	Repro      string
	Violations []string
}

// CampaignResult aggregates a sweep or campaign.
type CampaignResult struct {
	// Runs is the number of scenarios executed (probe runs included).
	Runs int
	// Boundaries is the phase length the probe run discovered (workload
	// boundaries for CrashSweep, recovery boundaries for NestedSweep).
	Boundaries int
	Failures   []Failure
}

// ViolationCount sums violations across all failing scenarios.
func (c *CampaignResult) ViolationCount() int {
	n := 0
	for _, f := range c.Failures {
		n += len(f.Violations)
	}
	return n
}

func (c *CampaignResult) collect(cfg Config, res *Result) {
	c.Runs++
	if len(res.Violations) > 0 {
		c.Failures = append(c.Failures, Failure{Repro: Repro(cfg), Violations: res.Violations})
	}
}

// CrashSweep first probes the workload to count its write boundaries, then
// replays it crashing at every stride-th boundary: "crash at write k,
// recover, verify, for all k".
func CrashSweep(base Config, stride int, logf func(string, ...any)) (*CampaignResult, error) {
	if stride <= 0 {
		stride = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	probe := base
	probe.CrashAt, probe.NestedCrashAt = -1, -1
	pres, err := Run(probe)
	if err != nil {
		return nil, err
	}
	out := &CampaignResult{Boundaries: pres.Boundaries}
	out.collect(probe, pres)
	logf("crash sweep: %d workload boundaries, stride %d", pres.Boundaries, stride)
	for k := 0; k < pres.Boundaries; k += stride {
		cfg := base
		cfg.CrashAt, cfg.NestedCrashAt = k, -1
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		if !res.Crashed {
			logf("note: crash-at %d never fired (run saw %d boundaries)", k, res.Boundaries)
		}
		out.collect(cfg, res)
	}
	return out, nil
}

// NestedSweep crashes the workload at base.CrashAt, then sweeps a second
// power loss over every stride-th boundary of the recovery itself —
// "crash during Recover, recover again".
func NestedSweep(base Config, stride int, logf func(string, ...any)) (*CampaignResult, error) {
	if stride <= 0 {
		stride = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if base.CrashAt < 0 {
		return nil, fmt.Errorf("chaos: nested sweep needs a first crash point (CrashAt >= 0)")
	}
	probe := base
	probe.NestedCrashAt = -1
	pres, err := Run(probe)
	if err != nil {
		return nil, err
	}
	if !pres.Crashed {
		return nil, fmt.Errorf("chaos: crash-at %d never fired (workload has %d boundaries)", base.CrashAt, pres.Boundaries)
	}
	out := &CampaignResult{Boundaries: pres.RecoveryBoundaries}
	out.collect(probe, pres)
	logf("nested sweep: first crash at %d, %d recovery boundaries, stride %d",
		base.CrashAt, pres.RecoveryBoundaries, stride)
	for k := 0; k < pres.RecoveryBoundaries; k += stride {
		cfg := base
		cfg.NestedCrashAt = k
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out.collect(cfg, res)
	}
	return out, nil
}

// crashPointFor derives a trial's crash boundary from its seed alone, so a
// campaign trial is reproducible as a plain single run with -crash-at.
func crashPointFor(seed int64, boundaries int) int {
	return int(rand.New(rand.NewSource(seed ^ 0xc4a5b0)).Int63n(int64(boundaries)))
}

// FaultCampaign layers a seeded probabilistic device-fault schedule on
// randomized crash points: each trial probes the faulted workload for its
// boundary count, then crashes at a seed-derived boundary. Reported data
// loss is legal under faults; silent corruption or a non-PowerLoss panic
// is a violation.
func FaultCampaign(base Config, trials int, logf func(string, ...any)) (*CampaignResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if base.FaultRate <= 0 {
		return nil, fmt.Errorf("chaos: fault campaign needs FaultRate > 0")
	}
	out := &CampaignResult{}
	for t := 0; t < trials; t++ {
		cfg := base
		cfg.Seed = base.Seed + int64(t)
		probe := cfg
		probe.CrashAt, probe.NestedCrashAt = -1, -1
		pres, err := Run(probe)
		if err != nil {
			return nil, err
		}
		out.collect(probe, pres)
		if pres.Boundaries == 0 {
			continue
		}
		cfg.CrashAt = crashPointFor(cfg.Seed, pres.Boundaries)
		cfg.NestedCrashAt = -1
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out.collect(cfg, res)
		logf("fault trial %d: seed %d, crash-at %d/%d, %d faults, %d op errors, %d violations",
			t, cfg.Seed, cfg.CrashAt, pres.Boundaries, len(res.Faults), res.OpErrors, len(res.Violations))
	}
	return out, nil
}

// ShadowCampaign crashes at a seed-derived boundary and kills one half of
// several in-use shadow entries before recovery. With half repair enabled
// recovery must lose nothing (the duplicate absorbs the fault); with
// BreakHalfRepair set the harness must catch the resulting loss.
func ShadowCampaign(base Config, trials int, logf func(string, ...any)) (*CampaignResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if base.ShadowFaults <= 0 {
		base.ShadowFaults = 2
	}
	out := &CampaignResult{}
	for t := 0; t < trials; t++ {
		cfg := base
		cfg.Seed = base.Seed + int64(t)
		probe := cfg
		probe.CrashAt, probe.NestedCrashAt = -1, -1
		probe.ShadowFaults = 0
		pres, err := Run(probe)
		if err != nil {
			return nil, err
		}
		out.collect(probe, pres)
		if pres.Boundaries == 0 {
			continue
		}
		cfg.CrashAt = crashPointFor(cfg.Seed, pres.Boundaries)
		cfg.NestedCrashAt = -1
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out.collect(cfg, res)
		half := uint64(0)
		if res.Report != nil {
			half = res.Report.HalfRepairs
		}
		logf("shadow trial %d: seed %d, crash-at %d/%d, faults [%v], %d half repairs, %d violations",
			t, cfg.Seed, cfg.CrashAt, pres.Boundaries, res.ShadowFaultNotes, half, len(res.Violations))
	}
	return out, nil
}
