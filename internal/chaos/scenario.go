package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"soteria/internal/config"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// Config fully determines one chaos scenario: same Config, same outcome.
type Config struct {
	Seed   int64
	Writes int // workload operations (roughly 3/4 writes, 1/4 reads)
	Mode   memctrl.Mode
	// Strategy selects the metadata-persistence scheme under test (empty =
	// memctrl.DefaultStrategy). Every strategy faces the identical workload,
	// crash schedule and acknowledged-write oracle.
	Strategy string
	// CrashAt cuts power at this workload write boundary; negative never.
	CrashAt int
	// NestedCrashAt cuts power again at this boundary of the recovery
	// that follows the first crash; negative never.
	NestedCrashAt int
	// FaultRate is the per-boundary probability of one random device
	// fault (bit flip, dead word, dead line) on a previously-written line.
	FaultRate float64
	// ShadowFaults kills one word of one half of this many in-use shadow
	// entries at crash time. A single-half fault is absorbable by
	// construction (Soteria duplicates each entry), so recovery must
	// still lose nothing — unless BreakHalfRepair is set.
	ShadowFaults int
	// BreakHalfRepair disables the duplicated-entry repair, deliberately
	// breaking recovery; the harness is expected to catch the loss.
	BreakHalfRepair bool
	// Logf, when non-nil, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

// Result is what one scenario observed.
type Result struct {
	// Boundaries counts workload write boundaries (up to the crash, or
	// the whole workload when no crash fired).
	Boundaries int
	// RecoveryBoundaries counts write boundaries inside Recover (only
	// meaningful when the scenario crashed and NestedCrashAt < 0).
	RecoveryBoundaries int
	Crashed            bool
	CrashBoundary      int
	NestedCrashed      bool
	Report             *memctrl.RecoveryReport
	Faults             []AppliedFault
	ShadowFaultNotes   []string
	// OpErrors counts workload operations that returned a typed error
	// (legal under fault injection; a violation without it).
	OpErrors int
	// Violations lists every invariant breach. Empty means the scenario
	// upheld the paper's guarantees.
	Violations []string
}

func (r *Result) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

type opKind int

const (
	opWrite opKind = iota
	opRead
)

func (k opKind) String() string {
	if k == opWrite {
		return "write"
	}
	return "read"
}

type wop struct {
	kind opKind
	addr uint64
}

// genOps derives the deterministic workload for one seed: a working set big
// enough to thrash the TestSystem metadata cache, then ops drawn from it
// (roughly 3/4 writes, 1/4 reads). Every harness — single-controller runs,
// sharded-device runs, checkpoint conformance — observes the identical
// stream for the same seed, which is what makes repro lines portable
// between them.
func genOps(seed int64, writes int, dataLines uint64) []wop {
	return genOpsFrom(rand.New(rand.NewSource(seed)), writes, dataLines)
}

// genOpsFrom is genOps over a caller-owned RNG (the draw order is part of
// the repro contract; never reorder these calls).
func genOpsFrom(rng *rand.Rand, writes int, dataLines uint64) []wop {
	wsSize := writes/2 + 1
	if wsSize > 96 {
		wsSize = 96
	}
	seen := make(map[uint64]bool, wsSize)
	ws := make([]uint64, 0, wsSize)
	for len(ws) < wsSize {
		blk := uint64(rng.Int63n(int64(dataLines)))
		if !seen[blk] {
			seen[blk] = true
			ws = append(ws, blk*nvm.LineSize)
		}
	}
	ops := make([]wop, writes)
	for i := range ops {
		k := opWrite
		if i > 0 && rng.Float64() < 0.25 {
			k = opRead
		}
		ops[i] = wop{kind: k, addr: ws[rng.Intn(len(ws))]}
	}
	return ops
}

// lineFor is the deterministic content of the i-th workload write; the
// oracle recomputes it instead of remembering it (splitmix64 over seed+i).
func lineFor(seed int64, i int) nvm.Line {
	var l nvm.Line
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i+1)*0xbf58476d1ce4e5b9
	for off := 0; off < nvm.LineSize; off += 8 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		for k := 0; k < 8; k++ {
			l[off+k] = byte(x >> (8 * uint(k)))
		}
	}
	return l
}

// guard runs f, converting an inject.PowerLoss panic into a return value.
// Any other panic is returned as panicked: a simulated power cut must
// never surface as anything but PowerLoss.
func guard(f func()) (pl *inject.PowerLoss, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(inject.PowerLoss); ok {
				pl = &p
				return
			}
			panicked = r
		}
	}()
	f()
	return pl, panicked
}

// Run executes one scenario end to end: workload (with optional crash and
// fault schedule), recovery (with optional nested crash), then the
// invariant oracle — post-recovery read-back with an old-or-new exemption
// for the one in-flight operation, replay of the interrupted tail,
// FlushAll + VerifyAll, a second clean crash/recover round-trip, and a
// final strict read-back.
func Run(cfg Config) (*Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{CrashBoundary: -1}

	if cfg.Strategy != "" && cfg.Strategy != "soteria" {
		// Shadow-entry faults and the half-repair kill switch target the
		// Soteria duplicated-entry table specifically.
		if cfg.ShadowFaults > 0 {
			return nil, fmt.Errorf("chaos: ShadowFaults requires the soteria strategy (got %q)", cfg.Strategy)
		}
		if cfg.BreakHalfRepair {
			return nil, fmt.Errorf("chaos: BreakHalfRepair requires the soteria strategy (got %q)", cfg.Strategy)
		}
	}

	ctrl, err := memctrl.New(config.TestSystem(), cfg.Mode, []byte("chaos-harness-key"),
		memctrl.Options{DisableShadowHalfRepair: cfg.BreakHalfRepair, Strategy: cfg.Strategy})
	if err != nil {
		return nil, err
	}

	// Deterministic workload: a working set big enough to thrash the
	// TestSystem metadata cache (128 slots), ops drawn from it.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var dataLines, faultCeil uint64
	if l := ctrl.Layout(); l != nil {
		dataLines = l.DataBlocks
		// Faults land anywhere below the shadow BMT (an SRAM stand-in).
		// Strategies without a shadow region leave ShadowTreeBase at 0;
		// their whole layout is fault-eligible.
		faultCeil = l.ShadowTreeBase
		if l.ShadowEntries == 0 {
			faultCeil = l.Total
		}
	} else {
		dataLines = ctrl.Device().Capacity() / nvm.LineSize
	}
	ops := genOpsFrom(rng, cfg.Writes, dataLines)

	inj := NewInjector(ctrl.Device(), rand.New(rand.NewSource(cfg.Seed^0x5eedfa11)), cfg.FaultRate, faultCeil)
	inj.CrashAt = cfg.CrashAt
	ctrl.SetHook(inj)

	// With random device faults (or deliberately broken recovery) reads
	// and ops may legitimately fail with a typed error; what is never
	// legitimate is wrong data without an error, or a panic.
	errTolerant := cfg.FaultRate > 0 || cfg.BreakHalfRepair

	committed := make(map[uint64]int) // addr -> op index of last durable write
	var now sim.Time
	inFlight := -1 // op index interrupted by the crash, when it was a write
	var inFlightAddr uint64
	crashOp := -1

	runOp := func(i int) (opErr error, pl *inject.PowerLoss, pan any) {
		o := ops[i]
		pl, pan = guard(func() {
			if o.kind == opWrite {
				line := lineFor(cfg.Seed, i)
				now, opErr = ctrl.WriteBlock(now, o.addr, &line)
			} else {
				_, now, opErr = ctrl.ReadBlock(now, o.addr)
			}
		})
		return opErr, pl, pan
	}

	for i := 0; i < len(ops); i++ {
		opErr, pl, pan := runOp(i)
		if pan != nil {
			res.violate("op %d (%v %#x): unexpected panic: %v", i, ops[i].kind, ops[i].addr, pan)
			res.Faults = inj.Applied
			return res, nil
		}
		if pl != nil {
			res.Crashed = true
			res.CrashBoundary = pl.Boundary
			crashOp = i
			if ops[i].kind == opWrite {
				inFlight = i
				inFlightAddr = ops[i].addr
			}
			break
		}
		if opErr != nil {
			res.OpErrors++
			if !errTolerant {
				res.violate("op %d (%v %#x): unexpected error: %v", i, ops[i].kind, ops[i].addr, opErr)
			}
			continue
		}
		if ops[i].kind == opWrite {
			committed[ops[i].addr] = i
		}
	}
	res.Boundaries = inj.Boundary
	res.Faults = inj.Applied

	if res.Crashed {
		logf("power loss at boundary %d (op %d)", res.CrashBoundary, crashOp)
		// Tracked slots must be read before Crash wipes the volatile
		// table handle.
		tracked := ctrl.TrackedSlots()
		if err := ctrl.Crash(); err != nil {
			res.violate("Crash() after power loss: %v", err)
			return res, nil
		}
		inj.StopFaults()

		if cfg.ShadowFaults > 0 && ctrl.Layout() != nil {
			applyShadowFaults(cfg, res, ctrl, tracked)
		}

		// Recovery, possibly cut by a second power loss.
		inj.Rearm(cfg.NestedCrashAt)
		var rep *memctrl.RecoveryReport
		var rerr error
		pl, pan := guard(func() { rep, rerr = ctrl.Recover() })
		if pan != nil {
			res.violate("Recover: unexpected panic: %v", pan)
			return res, nil
		}
		if pl != nil {
			res.NestedCrashed = true
			logf("nested power loss at recovery boundary %d", pl.Boundary)
			if err := ctrl.Crash(); err != nil {
				res.violate("Crash() during interrupted recovery: %v", err)
				return res, nil
			}
			inj.Disarm()
			pl2, pan2 := guard(func() { rep, rerr = ctrl.Recover() })
			if pan2 != nil {
				res.violate("second Recover: unexpected panic: %v", pan2)
				return res, nil
			}
			if pl2 != nil {
				res.violate("second Recover: power loss fired while disarmed")
				return res, nil
			}
		}
		res.RecoveryBoundaries = inj.Boundary
		inj.Disarm()
		if rerr != nil {
			res.violate("Recover failed: %v", rerr)
			return res, nil
		}
		res.Report = rep
		checkReport(cfg, res, rep)
	} else {
		inj.Disarm()
	}

	readCheck := func(phase string, inFlightExempt bool) {
		addrs := make([]uint64, 0, len(committed))
		for a := range committed {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			var got nvm.Line
			var rdErr error
			pl, pan := guard(func() { got, now, rdErr = ctrl.ReadBlock(now, a) })
			if pan != nil {
				res.violate("%s: read %#x: unexpected panic: %v", phase, a, pan)
				return
			}
			if pl != nil {
				res.violate("%s: read %#x: power loss fired while disarmed", phase, a)
				return
			}
			if rdErr != nil {
				if !errTolerant {
					res.violate("%s: read %#x (committed op %d) failed: %v", phase, a, committed[a], rdErr)
				}
				continue
			}
			want := lineFor(cfg.Seed, committed[a])
			if inFlightExempt && inFlight >= 0 && a == inFlightAddr {
				if got != want && got != lineFor(cfg.Seed, inFlight) {
					res.violate("%s: in-flight block %#x holds neither the old value (op %d) nor the new (op %d)",
						phase, a, committed[a], inFlight)
				}
				continue
			}
			if got != want {
				res.violate("%s: silent corruption at %#x: committed op %d does not read back", phase, a, committed[a])
			}
		}
		// An in-flight write to a never-before-written block must read
		// back as either the new value or pristine zeros.
		if inFlightExempt && inFlight >= 0 {
			if _, ok := committed[inFlightAddr]; !ok {
				var got nvm.Line
				var rdErr error
				pl, pan := guard(func() { got, now, rdErr = ctrl.ReadBlock(now, inFlightAddr) })
				switch {
				case pan != nil:
					res.violate("%s: read in-flight %#x: unexpected panic: %v", phase, inFlightAddr, pan)
				case pl != nil:
					res.violate("%s: read in-flight %#x: power loss fired while disarmed", phase, inFlightAddr)
				case rdErr != nil:
					if !errTolerant {
						res.violate("%s: read in-flight %#x failed: %v", phase, inFlightAddr, rdErr)
					}
				case got != (nvm.Line{}) && got != lineFor(cfg.Seed, inFlight):
					res.violate("%s: in-flight cold block %#x is neither zero nor the new value", phase, inFlightAddr)
				}
			}
		}
	}

	if res.Crashed {
		readCheck("post-recovery", true)
		// Replay the interrupted operation and the rest of the workload
		// with injection disarmed.
		for i := crashOp; i >= 0 && i < len(ops); i++ {
			opErr, pl, pan := runOp(i)
			if pan != nil {
				res.violate("replay op %d: unexpected panic: %v", i, pan)
				return res, nil
			}
			if pl != nil {
				res.violate("replay op %d: power loss fired while disarmed", i)
				return res, nil
			}
			if opErr != nil {
				res.OpErrors++
				if !errTolerant {
					res.violate("replay op %d (%v %#x): unexpected error: %v", i, ops[i].kind, ops[i].addr, opErr)
				}
				continue
			}
			if ops[i].kind == opWrite {
				committed[ops[i].addr] = i
			}
		}
	} else {
		readCheck("post-workload", false)
	}

	// Settle and verify the whole image.
	pl, pan := guard(func() { now = ctrl.FlushAll(now) })
	if pan != nil {
		res.violate("FlushAll: unexpected panic: %v", pan)
		return res, nil
	}
	if pl != nil {
		res.violate("FlushAll: power loss fired while disarmed")
		return res, nil
	}
	if err := ctrl.VerifyAll(); err != nil && !errTolerant {
		res.violate("VerifyAll after replay: %v", err)
	}

	// A clean crash/recover round-trip on the flushed image must be
	// lossless regardless of what came before (faults excepted).
	if err := ctrl.Crash(); err != nil {
		res.violate("clean-round Crash: %v", err)
	} else {
		rep, err := ctrl.Recover()
		switch {
		case err != nil:
			res.violate("clean-round Recover: %v", err)
		case cfg.FaultRate == 0 && (len(rep.FailedBlocks) > 0 || len(rep.LostSlots) > 0):
			res.violate("clean-round recovery lost blocks: %d failed, %d lost slots", len(rep.FailedBlocks), len(rep.LostSlots))
		}
	}
	readCheck("final", false)
	return res, nil
}

// applyShadowFaults kills one word of one half of cfg.ShadowFaults shadow
// entries, preferring slots that were actually tracking blocks at crash
// time so the fault hits an entry recovery needs.
func applyShadowFaults(cfg Config, res *Result, ctrl *memctrl.Controller, tracked []uint64) {
	frng := rand.New(rand.NewSource(cfg.Seed ^ 0x0fa111))
	slots := tracked
	if len(slots) == 0 {
		for s := uint64(0); s < ctrl.Layout().ShadowEntries; s++ {
			slots = append(slots, s)
		}
	}
	frng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	n := cfg.ShadowFaults
	if n > len(slots) {
		n = len(slots)
	}
	for j := 0; j < n; j++ {
		slot := slots[j]
		word := 4*frng.Intn(2) + frng.Intn(4) // one word of one 32-byte half
		addr := ctrl.Layout().ShadowBase + slot*nvm.LineSize
		ctrl.Device().CorruptWord(addr, word)
		res.ShadowFaultNotes = append(res.ShadowFaultNotes,
			fmt.Sprintf("slot %d word %d (line %#x)", slot, word, addr))
	}
}

// checkReport enforces the accounting invariants on a recovery report.
func checkReport(cfg Config, res *Result, rep *memctrl.RecoveryReport) {
	if rep == nil {
		return
	}
	if rep.RecoveredBlocks+len(rep.FailedBlocks) > rep.TrackedEntries {
		res.violate("recovery report accounting: %d recovered + %d failed > %d tracked",
			rep.RecoveredBlocks, len(rep.FailedBlocks), rep.TrackedEntries)
	}
	if cfg.FaultRate == 0 {
		// Without random device faults every tracked block must come
		// back: crash-only sweeps always, and single-half shadow faults
		// because Soteria duplicates each entry. When BreakHalfRepair is
		// set these violations firing is the harness catching the broken
		// recovery — exactly what that knob is for.
		for _, fb := range rep.FailedBlocks {
			res.violate("recovery lost tracked block %#x: %s", fb.Addr, fb.Reason)
		}
		for _, s := range rep.LostSlots {
			res.violate("recovery lost shadow slot %d entirely", s)
		}
	}
	if cfg.ShadowFaults > 0 && !cfg.BreakHalfRepair && len(res.ShadowFaultNotes) > 0 && rep.HalfRepairs == 0 {
		res.violate("shadow faults injected (%v) but recovery performed no half repairs", res.ShadowFaultNotes)
	}
}
