package chaos

import (
	"strings"
	"testing"

	"soteria/internal/memctrl"
)

func TestNetRunCleanSchedule(t *testing.T) {
	res, err := NetRun(NetConfig{
		Seed:    11,
		Ops:     20,
		Clients: 2,
		Shards:  2,
		Mode:    memctrl.ModeSRC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("clean run violated: %v", res.Violations)
	}
	if res.AckedWrites+res.AckedReads != 40 {
		t.Fatalf("acked %d ops, want 40", res.AckedWrites+res.AckedReads)
	}
	if res.AppliedWrites != uint64(res.AckedWrites) {
		t.Fatalf("applied %d != acked %d", res.AppliedWrites, res.AckedWrites)
	}
}

func TestNetRunCombinedWithKill(t *testing.T) {
	sched, err := NetFaultSchedule("combined")
	if err != nil {
		t.Fatal(err)
	}
	cfg := NetConfig{
		Seed:      5,
		Ops:       25,
		Clients:   3,
		Shards:    2,
		Mode:      memctrl.ModeSRC,
		Kills:     1,
		Schedule:  sched,
		FaultName: "combined",
	}
	res, err := NetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("combined+kill run violated: %v\nrepro: %s", res.Violations, NetRepro(cfg))
	}
	if res.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Kills)
	}
	if res.AppliedWrites != uint64(res.AckedWrites) {
		t.Fatalf("exactly-once broken: applied %d != acked %d", res.AppliedWrites, res.AckedWrites)
	}
}

func TestNetReportDeterministic(t *testing.T) {
	run := func() string {
		res, err := NetRun(NetConfig{Seed: 9, Ops: 15, Clients: 2, Shards: 2, Mode: memctrl.ModeSRC})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same config produced different reports:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "oracle:") {
		t.Fatalf("report missing oracle verdict:\n%s", a)
	}
}

func TestNetFaultScheduleNames(t *testing.T) {
	for _, name := range []string{"clean", "latency", "throttle", "corrupt", "reset", "truncate", "partition", "combined"} {
		if _, err := NetFaultSchedule(name); err != nil {
			t.Errorf("schedule %q: %v", name, err)
		}
	}
	if _, err := NetFaultSchedule("bogus"); err == nil {
		t.Error("bogus schedule accepted")
	}
}
