package chaos

import (
	"strings"
	"testing"

	"soteria/internal/memctrl"
)

func TestNetRunCleanSchedule(t *testing.T) {
	res, err := NetRun(NetConfig{
		Seed:    11,
		Ops:     20,
		Clients: 2,
		Shards:  2,
		Mode:    memctrl.ModeSRC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("clean run violated: %v", res.Violations)
	}
	if res.AckedWrites+res.AckedReads != 40 {
		t.Fatalf("acked %d ops, want 40", res.AckedWrites+res.AckedReads)
	}
	if res.AppliedWrites != uint64(res.AckedWrites) {
		t.Fatalf("applied %d != acked %d", res.AppliedWrites, res.AckedWrites)
	}
}

func TestNetRunCombinedWithKill(t *testing.T) {
	sched, err := NetFaultSchedule("combined")
	if err != nil {
		t.Fatal(err)
	}
	cfg := NetConfig{
		Seed:      5,
		Ops:       25,
		Clients:   3,
		Shards:    2,
		Mode:      memctrl.ModeSRC,
		Kills:     1,
		Schedule:  sched,
		FaultName: "combined",
	}
	res, err := NetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("combined+kill run violated: %v\nrepro: %s", res.Violations, NetRepro(cfg))
	}
	if res.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Kills)
	}
	if res.AppliedWrites != uint64(res.AckedWrites) {
		t.Fatalf("exactly-once broken: applied %d != acked %d", res.AppliedWrites, res.AckedWrites)
	}
}

// TestNetRunPipelinedCombinedWithKill drives the windowed batching front
// end through the combined fault schedule plus a kill/restart cycle: the
// acked-write oracle, the exactly-once equality and the batch-frame
// classifier must all hold with go-back-N recovery in play.
func TestNetRunPipelinedCombinedWithKill(t *testing.T) {
	sched, err := NetFaultSchedule("combined")
	if err != nil {
		t.Fatal(err)
	}
	cfg := NetConfig{
		Seed:      5,
		Ops:       25,
		Clients:   3,
		Shards:    2,
		Mode:      memctrl.ModeSRC,
		Kills:     1,
		Pipeline:  4,
		Schedule:  sched,
		FaultName: "combined",
	}
	res, err := NetRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("pipelined combined+kill run violated: %v\nrepro: %s", res.Violations, NetRepro(cfg))
	}
	if res.Batch != 8 {
		t.Fatalf("batch defaulted to %d, want 8", res.Batch)
	}
	if res.AppliedWrites != uint64(res.AckedWrites) {
		t.Fatalf("exactly-once broken: applied %d != acked %d", res.AppliedWrites, res.AckedWrites)
	}
	if res.Proxy.BatchFrames == 0 {
		t.Fatal("no batch frames classified by the proxy")
	}
	if !strings.Contains(res.Report(), "front end: pipelined") {
		t.Fatalf("report missing pipelined front-end line:\n%s", res.Report())
	}
	if !strings.Contains(NetRepro(cfg), "-pipeline 4") {
		t.Fatalf("repro missing pipeline flag: %s", NetRepro(cfg))
	}
}

func TestNetReportDeterministic(t *testing.T) {
	run := func() string {
		res, err := NetRun(NetConfig{Seed: 9, Ops: 15, Clients: 2, Shards: 2, Mode: memctrl.ModeSRC})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same config produced different reports:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "oracle:") {
		t.Fatalf("report missing oracle verdict:\n%s", a)
	}
}

func TestNetFaultScheduleNames(t *testing.T) {
	for _, name := range []string{"clean", "latency", "throttle", "corrupt", "reset", "truncate", "partition", "combined"} {
		if _, err := NetFaultSchedule(name); err != nil {
			t.Errorf("schedule %q: %v", name, err)
		}
	}
	if _, err := NetFaultSchedule("bogus"); err == nil {
		t.Error("bogus schedule accepted")
	}
}
