package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

// DeviceInjector is the sharded-device counterpart of Injector: one
// device-wide write-boundary counter fed by per-shard hooks. Each shard
// worker gets its own hook (with its own SealTracker, since seal nesting
// is per-controller state), and the hooks funnel boundary crossings into
// this shared, mutex-guarded counter. Crashing "at boundary k" therefore
// means the k-th persistent write boundary the device as a whole crosses,
// whichever shard crosses it.
//
// Boundary numbering is deterministic exactly when the device's request
// order is — i.e. under the closed-loop drive DeviceRun uses. Concurrent
// drivers (the recovery tests in internal/device) still get a valid crash
// at *some* boundary; they must not assume which.
type DeviceInjector struct {
	mu         sync.Mutex
	boundary   int
	crashAt    int
	fired      bool
	firedShard int
	disarmed   bool
}

// NewDeviceInjector builds an injector that cuts power at the given
// device-wide boundary (negative: never).
func NewDeviceInjector(crashAt int) *DeviceInjector {
	return &DeviceInjector{crashAt: crashAt, firedShard: -1}
}

// ShardHooks returns one hook per shard, suitable for
// device.SetShardHooks. Each hook tracks its own shard's seal depth and
// reports boundary crossings to the shared counter.
func (in *DeviceInjector) ShardHooks(n int) []inject.Hook {
	hooks := make([]inject.Hook, n)
	for i := range hooks {
		hooks[i] = &deviceShardHook{in: in, shard: i}
	}
	return hooks
}

// Boundaries returns the number of boundaries counted so far.
func (in *DeviceInjector) Boundaries() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.boundary
}

// Fired reports whether the crash trigger went off, and on which shard.
func (in *DeviceInjector) Fired() (bool, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired, in.firedShard
}

// Disarm stops crash targeting; boundary counting continues.
func (in *DeviceInjector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disarmed = true
	in.crashAt = -1
}

// hit is called by a shard hook at each boundary crossing; it panics with
// inject.PowerLoss (unwinding that shard's in-flight operation) when the
// crossing is the armed one.
func (in *DeviceInjector) hit(shard int) {
	in.mu.Lock()
	b := in.boundary
	in.boundary++
	fire := !in.disarmed && in.crashAt >= 0 && b == in.crashAt
	if fire {
		in.fired = true
		in.firedShard = shard
	}
	in.mu.Unlock()
	if fire {
		panic(inject.PowerLoss{Boundary: b})
	}
}

// deviceShardHook adapts one shard's event stream to the shared counter.
// It is only ever called from its shard's worker goroutine, so the seal
// tracker needs no locking.
type deviceShardHook struct {
	in    *DeviceInjector
	shard int
	seals inject.SealTracker
}

// Event implements inject.Hook. Same ordering as Injector.Event: act
// before Advance so a panic at an outermost SealBegin leaves the tracker
// balanced.
func (h *deviceShardHook) Event(ev inject.Event) {
	if h.seals.IsBoundary(ev) {
		h.in.hit(h.shard)
	}
	h.seals.Advance(ev)
}

// DeviceConfig fully determines one sharded-device chaos scenario.
// Nested crash-during-recovery sweeps stay on the single-controller
// harness (Config.NestedCrashAt): device recovery runs the shards
// concurrently, so a nested boundary index would not name a reproducible
// point.
type DeviceConfig struct {
	Seed   int64
	Writes int // workload operations (roughly 3/4 writes, 1/4 reads)
	Shards int
	Mode   memctrl.Mode
	// CrashAt cuts power at this device-wide write boundary; negative
	// never.
	CrashAt int
	// Logf, when non-nil, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

// DeviceResult is what one sharded-device scenario observed.
type DeviceResult struct {
	Boundaries    int
	Crashed       bool
	CrashBoundary int
	// CrashShard is the shard whose in-flight operation the power loss
	// unwound (-1 when no crash fired).
	CrashShard int
	Report     *device.RecoveryReport
	OpErrors   int
	Violations []string
}

func (r *DeviceResult) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// DeviceRepro renders the cmd/chaos invocation that replays cfg.
func DeviceRepro(cfg DeviceConfig) string {
	s := fmt.Sprintf("go run ./cmd/chaos -device -shards %d -seed %d -writes %d -mode %s",
		cfg.Shards, cfg.Seed, cfg.Writes, ModeFlag(cfg.Mode))
	if cfg.CrashAt >= 0 {
		s += fmt.Sprintf(" -crash-at %d", cfg.CrashAt)
	}
	return s
}

// DeviceRun executes one scenario against a sharded device, closed-loop
// (one request in flight device-wide, so boundary numbering is
// deterministic), and checks the same invariants as Run: every committed
// write reads back after recovery, the one in-flight write is old-or-new,
// every shard's recovery report accounts for its tracked blocks, and a
// clean crash/recover round-trip on the settled image loses nothing.
func DeviceRun(cfg DeviceConfig) (*DeviceResult, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	res := &DeviceResult{CrashBoundary: -1, CrashShard: -1}

	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   cfg.Mode,
		Key:    []byte("chaos-harness-key"),
		Shards: cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer dev.Close()

	// Deterministic workload over the device's global data space, same
	// shape as the single-controller harness: a working set that thrashes
	// the (per-shard) metadata caches, ops drawn from it.
	rng := rand.New(rand.NewSource(cfg.Seed))
	dataLines := dev.Info().CapacityBytes / nvm.LineSize
	wsSize := cfg.Writes/2 + 1
	if wsSize > 96 {
		wsSize = 96
	}
	seen := make(map[uint64]bool, wsSize)
	ws := make([]uint64, 0, wsSize)
	for len(ws) < wsSize {
		blk := uint64(rng.Int63n(int64(dataLines)))
		if !seen[blk] {
			seen[blk] = true
			ws = append(ws, blk*nvm.LineSize)
		}
	}
	ops := make([]wop, cfg.Writes)
	for i := range ops {
		k := opWrite
		if i > 0 && rng.Float64() < 0.25 {
			k = opRead
		}
		ops[i] = wop{kind: k, addr: ws[rng.Intn(len(ws))]}
	}

	inj := NewDeviceInjector(cfg.CrashAt)
	if err := dev.SetShardHooks(inj.ShardHooks(cfg.Shards)); err != nil {
		return nil, err
	}

	committed := make(map[uint64]int) // addr -> op index of last durable write
	inFlight := -1
	var inFlightAddr uint64
	crashOp := -1

	runOp := func(i int) error {
		o := ops[i]
		if o.kind == opWrite {
			line := lineFor(cfg.Seed, i)
			_, err := dev.Write(o.addr, &line)
			return err
		}
		_, _, err := dev.Read(o.addr)
		return err
	}

	var powerErr *device.PowerError
	for i := 0; i < len(ops); i++ {
		opErr := runOp(i)
		if errors.As(opErr, &powerErr) {
			res.Crashed = true
			res.CrashBoundary = powerErr.Boundary
			res.CrashShard = powerErr.Shard
			crashOp = i
			if ops[i].kind == opWrite {
				inFlight = i
				inFlightAddr = ops[i].addr
			}
			break
		}
		if opErr != nil {
			res.OpErrors++
			res.violate("op %d (%v %#x): unexpected error: %v", i, ops[i].kind, ops[i].addr, opErr)
			continue
		}
		if ops[i].kind == opWrite {
			committed[ops[i].addr] = i
		}
	}
	res.Boundaries = inj.Boundaries()

	if res.Crashed {
		logf("power loss at device boundary %d (op %d, shard %d)", res.CrashBoundary, crashOp, res.CrashShard)
		// The power loss already took the device down and fenced the
		// epoch; Crash() drops every shard's volatile state.
		if err := dev.Crash(); err != nil {
			res.violate("Crash() after power loss: %v", err)
			return res, nil
		}
		inj.Disarm()
		rep, rerr := dev.Recover()
		if rerr != nil {
			res.violate("Recover failed: %v", rerr)
			return res, nil
		}
		res.Report = rep
		if len(rep.Shards) != cfg.Shards {
			res.violate("recovery report covers %d of %d shards", len(rep.Shards), cfg.Shards)
		}
		for sid, sr := range rep.Shards {
			if sr == nil {
				res.violate("shard %d: recovery report missing", sid)
				continue
			}
			if sr.RecoveredBlocks+len(sr.FailedBlocks) > sr.TrackedEntries {
				res.violate("shard %d report accounting: %d recovered + %d failed > %d tracked",
					sid, sr.RecoveredBlocks, len(sr.FailedBlocks), sr.TrackedEntries)
			}
			// Crash-only scenario: every tracked block must come back.
			for _, fb := range sr.FailedBlocks {
				res.violate("shard %d: recovery lost tracked block %#x: %s", sid, fb.Addr, fb.Reason)
			}
			for _, s := range sr.LostSlots {
				res.violate("shard %d: recovery lost shadow slot %d entirely", sid, s)
			}
		}
	} else {
		inj.Disarm()
	}

	readCheck := func(phase string, inFlightExempt bool) {
		addrs := make([]uint64, 0, len(committed))
		for a := range committed {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			got, _, rdErr := dev.Read(a)
			if rdErr != nil {
				res.violate("%s: read %#x (committed op %d) failed: %v", phase, a, committed[a], rdErr)
				continue
			}
			want := lineFor(cfg.Seed, committed[a])
			if inFlightExempt && inFlight >= 0 && a == inFlightAddr {
				if got != want && got != lineFor(cfg.Seed, inFlight) {
					res.violate("%s: in-flight block %#x holds neither the old value (op %d) nor the new (op %d)",
						phase, a, committed[a], inFlight)
				}
				continue
			}
			if got != want {
				res.violate("%s: silent corruption at %#x: committed op %d does not read back", phase, a, committed[a])
			}
		}
		if inFlightExempt && inFlight >= 0 {
			if _, ok := committed[inFlightAddr]; !ok {
				got, _, rdErr := dev.Read(inFlightAddr)
				switch {
				case rdErr != nil:
					res.violate("%s: read in-flight %#x failed: %v", phase, inFlightAddr, rdErr)
				case got != (nvm.Line{}) && got != lineFor(cfg.Seed, inFlight):
					res.violate("%s: in-flight cold block %#x is neither zero nor the new value", phase, inFlightAddr)
				}
			}
		}
	}

	if res.Crashed {
		readCheck("post-recovery", true)
		// Replay the interrupted operation and the rest of the workload
		// with injection disarmed.
		for i := crashOp; i >= 0 && i < len(ops); i++ {
			if opErr := runOp(i); opErr != nil {
				res.OpErrors++
				res.violate("replay op %d (%v %#x): unexpected error: %v", i, ops[i].kind, ops[i].addr, opErr)
				continue
			}
			if ops[i].kind == opWrite {
				committed[ops[i].addr] = i
			}
		}
	} else {
		readCheck("post-workload", false)
	}

	// Settle and verify every shard's full image.
	if err := dev.Flush(); err != nil {
		res.violate("Flush: %v", err)
		return res, nil
	}
	if err := dev.VerifyAll(); err != nil {
		res.violate("VerifyAll after replay: %v", err)
	}

	// A clean crash/recover round-trip on the flushed image must be
	// lossless on every shard.
	if err := dev.Crash(); err != nil {
		res.violate("clean-round Crash: %v", err)
	} else {
		rep, err := dev.Recover()
		switch {
		case err != nil:
			res.violate("clean-round Recover: %v", err)
		case !rep.Clean():
			res.violate("clean-round recovery lost blocks: %d failed, %d lost slots",
				rep.FailedBlocks(), rep.LostSlots())
		}
	}
	readCheck("final", false)
	return res, nil
}

// DeviceCrashSweep probes the workload for its device-wide boundary
// count, then replays it crashing at every stride-th boundary — the
// sharded-device version of CrashSweep.
func DeviceCrashSweep(base DeviceConfig, stride int, logf func(string, ...any)) (*CampaignResult, error) {
	if stride <= 0 {
		stride = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	probe := base
	probe.CrashAt = -1
	pres, err := DeviceRun(probe)
	if err != nil {
		return nil, err
	}
	out := &CampaignResult{Boundaries: pres.Boundaries}
	out.collectDevice(probe, pres)
	logf("device crash sweep: %d shards, %d workload boundaries, stride %d", base.Shards, pres.Boundaries, stride)
	for k := 0; k < pres.Boundaries; k += stride {
		cfg := base
		cfg.CrashAt = k
		res, err := DeviceRun(cfg)
		if err != nil {
			return nil, err
		}
		if !res.Crashed {
			logf("note: crash-at %d never fired (run saw %d boundaries)", k, res.Boundaries)
		}
		out.collectDevice(cfg, res)
	}
	return out, nil
}

func (c *CampaignResult) collectDevice(cfg DeviceConfig, res *DeviceResult) {
	c.Runs++
	if len(res.Violations) > 0 {
		c.Failures = append(c.Failures, Failure{Repro: DeviceRepro(cfg), Violations: res.Violations})
	}
}
