package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/inject"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
)

// DeviceInjector is the sharded-device counterpart of Injector: one
// device-wide write-boundary counter fed by per-shard hooks. Each shard
// worker gets its own hook (with its own SealTracker, since seal nesting
// is per-controller state), and the hooks funnel boundary crossings into
// this shared, mutex-guarded counter. Crashing "at boundary k" therefore
// means the k-th persistent write boundary the device as a whole crosses,
// whichever shard crosses it.
//
// Boundary numbering is deterministic exactly when the device's request
// order is — i.e. under the closed-loop drive DeviceRun uses. Concurrent
// drivers (the recovery tests in internal/device) still get a valid crash
// at *some* boundary; they must not assume which.
type DeviceInjector struct {
	mu         sync.Mutex
	boundary   int
	crashAt    int
	fired      bool
	firedShard int
	disarmed   bool
}

// NewDeviceInjector builds an injector that cuts power at the given
// device-wide boundary (negative: never).
func NewDeviceInjector(crashAt int) *DeviceInjector {
	return &DeviceInjector{crashAt: crashAt, firedShard: -1}
}

// ShardHooks returns one hook per shard, suitable for
// device.SetShardHooks. Each hook tracks its own shard's seal depth and
// reports boundary crossings to the shared counter.
func (in *DeviceInjector) ShardHooks(n int) []inject.Hook {
	hooks := make([]inject.Hook, n)
	for i := range hooks {
		hooks[i] = &deviceShardHook{in: in, shard: i}
	}
	return hooks
}

// Boundaries returns the number of boundaries counted so far.
func (in *DeviceInjector) Boundaries() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.boundary
}

// Preset seeds the boundary counter. Time-travel replay starts from a
// restored checkpoint that had already crossed that many boundaries, so
// the counter must resume there for the armed crash point to keep its
// original meaning.
func (in *DeviceInjector) Preset(boundary int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.boundary = boundary
}

// Fired reports whether the crash trigger went off, and on which shard.
func (in *DeviceInjector) Fired() (bool, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired, in.firedShard
}

// Disarm stops crash targeting; boundary counting continues.
func (in *DeviceInjector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disarmed = true
	in.crashAt = -1
}

// hit is called by a shard hook at each boundary crossing; it panics with
// inject.PowerLoss (unwinding that shard's in-flight operation) when the
// crossing is the armed one.
func (in *DeviceInjector) hit(shard int) {
	in.mu.Lock()
	b := in.boundary
	in.boundary++
	fire := !in.disarmed && in.crashAt >= 0 && b == in.crashAt
	if fire {
		in.fired = true
		in.firedShard = shard
	}
	in.mu.Unlock()
	if fire {
		panic(inject.PowerLoss{Boundary: b})
	}
}

// deviceShardHook adapts one shard's event stream to the shared counter.
// It is only ever called from its shard's worker goroutine, so the seal
// tracker needs no locking.
type deviceShardHook struct {
	in    *DeviceInjector
	shard int
	seals inject.SealTracker
}

// Event implements inject.Hook. Same ordering as Injector.Event: act
// before Advance so a panic at an outermost SealBegin leaves the tracker
// balanced.
func (h *deviceShardHook) Event(ev inject.Event) {
	if h.seals.IsBoundary(ev) {
		h.in.hit(h.shard)
	}
	h.seals.Advance(ev)
}

// DeviceConfig fully determines one sharded-device chaos scenario.
// Nested crash-during-recovery sweeps stay on the single-controller
// harness (Config.NestedCrashAt): device recovery runs the shards
// concurrently, so a nested boundary index would not name a reproducible
// point.
type DeviceConfig struct {
	Seed   int64
	Writes int // workload operations (roughly 3/4 writes, 1/4 reads)
	Shards int
	Mode   memctrl.Mode
	// Strategy selects the metadata-persistence scheme on every shard
	// (empty = memctrl.DefaultStrategy).
	Strategy string
	// CrashAt cuts power at this device-wide write boundary; negative
	// never.
	CrashAt int
	// Logf, when non-nil, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

// normalized fills defaults so that the config on a repro line names the
// scenario exactly (a defaulted field and its explicit value replay the
// same run).
func (cfg DeviceConfig) normalized() DeviceConfig {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Strategy == "" {
		cfg.Strategy = memctrl.DefaultStrategy
	}
	return cfg
}

// DeviceResult is what one sharded-device scenario observed.
type DeviceResult struct {
	Boundaries    int
	Crashed       bool
	CrashBoundary int
	// CrashShard is the shard whose in-flight operation the power loss
	// unwound (-1 when no crash fired).
	CrashShard int
	Report     *device.RecoveryReport
	OpErrors   int
	Violations []string
}

func (r *DeviceResult) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Summary renders the outcome deterministically — crash coordinates,
// per-shard recovery accounting, every violation. A time-travel replay is
// correct exactly when its Summary matches the original run's byte for
// byte, which is what the replay tests assert.
func (r *DeviceResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "boundaries=%d crashed=%t crash-boundary=%d crash-shard=%d op-errors=%d\n",
		r.Boundaries, r.Crashed, r.CrashBoundary, r.CrashShard, r.OpErrors)
	if r.Report != nil {
		for i, sr := range r.Report.Shards {
			if sr == nil {
				fmt.Fprintf(&b, "shard %d: no report\n", i)
				continue
			}
			fmt.Fprintf(&b, "shard %d: tracked=%d recovered=%d failed=%d lost-slots=%d half-repairs=%d\n",
				i, sr.TrackedEntries, sr.RecoveredBlocks, len(sr.FailedBlocks), len(sr.LostSlots), sr.HalfRepairs)
		}
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	return b.String()
}

// DeviceRepro renders the cmd/chaos invocation that replays cfg. Every
// scenario-shaping parameter is on the line — including the strategy, so a
// repro printed by a -schemes or sweep run is self-contained.
func DeviceRepro(cfg DeviceConfig) string {
	cfg = cfg.normalized()
	s := fmt.Sprintf("go run ./cmd/chaos -device -shards %d -seed %d -writes %d -mode %s -strategy %s",
		cfg.Shards, cfg.Seed, cfg.Writes, ModeFlag(cfg.Mode), cfg.Strategy)
	if cfg.CrashAt >= 0 {
		s += fmt.Sprintf(" -crash-at %d", cfg.CrashAt)
	}
	return s
}

// deviceHarness is one sharded-device scenario in progress: the engine
// hosting the shards, the boundary-counting injector, the deterministic
// workload, and the acknowledged-write oracle. DeviceRun drives it from op
// 0; DeviceReplay restores a checkpoint and drives it from the middle.
type deviceHarness struct {
	cfg  DeviceConfig
	logf func(format string, args ...any)
	eng  *device.Engine
	inj  *DeviceInjector
	ops  []wop

	res          *DeviceResult
	committed    map[uint64]int // addr -> op index of last durable write
	inFlight     int            // op index interrupted by the crash, when a write
	inFlightAddr uint64
	crashOp      int
}

// newDeviceHarness builds the engine-hosted device, the workload and the
// injector for cfg. trace enables the engine's canonical event trace
// (needed when the run is recorded for replay).
func newDeviceHarness(cfg DeviceConfig, trace bool) (*deviceHarness, error) {
	cfg = cfg.normalized()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System: config.TestSystem(),
			Mode:   cfg.Mode,
			Key:    []byte("chaos-harness-key"),
			Shards: cfg.Shards,
			Ctrl:   memctrl.Options{Strategy: cfg.Strategy},
		},
		Trace: trace,
	})
	if err != nil {
		return nil, err
	}

	// Deterministic workload over the device's global data space, same
	// shape as the single-controller harness.
	dataLines := eng.Info().CapacityBytes / nvm.LineSize
	ops := genOps(cfg.Seed, cfg.Writes, dataLines)

	inj := NewDeviceInjector(cfg.CrashAt)
	if err := eng.SetShardHooks(inj.ShardHooks(cfg.Shards)); err != nil {
		return nil, err
	}
	return &deviceHarness{
		cfg:  cfg,
		logf: logf,
		eng:  eng,
		inj:  inj,
		ops:  ops,
		res:  &DeviceResult{CrashBoundary: -1, CrashShard: -1},

		committed: make(map[uint64]int),
		inFlight:  -1,
		crashOp:   -1,
	}, nil
}

func (h *deviceHarness) runOp(i int) error {
	o := h.ops[i]
	if o.kind == opWrite {
		line := lineFor(h.cfg.Seed, i)
		_, err := h.eng.Write(o.addr, &line)
		return err
	}
	_, _, err := h.eng.Read(o.addr)
	return err
}

// run executes the scenario from workload op start: the (remaining)
// workload with optional crash, recovery with report checks, post-recovery
// read-back with an old-or-new exemption for the one in-flight write,
// replay of the interrupted tail, Flush + VerifyAll, a clean crash/recover
// round-trip, and a final strict read-back.
//
// When ckptEvery > 0, onCkpt is invoked before every ckptEvery-th workload
// op until the crash fires — the recording side of time-travel replay. The
// closed-loop drive guarantees the engine is at an op boundary there, so
// Engine.Checkpoint always succeeds.
func (h *deviceHarness) run(start, ckptEvery int, onCkpt func(op int) error) (*DeviceResult, error) {
	cfg, res := h.cfg, h.res

	var powerErr *device.PowerError
	for i := start; i < len(h.ops); i++ {
		if ckptEvery > 0 && (i-start)%ckptEvery == 0 {
			if err := onCkpt(i); err != nil {
				return nil, err
			}
		}
		opErr := h.runOp(i)
		if errors.As(opErr, &powerErr) {
			res.Crashed = true
			res.CrashBoundary = powerErr.Boundary
			res.CrashShard = powerErr.Shard
			h.crashOp = i
			if h.ops[i].kind == opWrite {
				h.inFlight = i
				h.inFlightAddr = h.ops[i].addr
			}
			break
		}
		if opErr != nil {
			res.OpErrors++
			res.violate("op %d (%v %#x): unexpected error: %v", i, h.ops[i].kind, h.ops[i].addr, opErr)
			continue
		}
		if h.ops[i].kind == opWrite {
			h.committed[h.ops[i].addr] = i
		}
	}
	res.Boundaries = h.inj.Boundaries()

	if res.Crashed {
		h.logf("power loss at device boundary %d (op %d, shard %d)", res.CrashBoundary, h.crashOp, res.CrashShard)
		// The power loss already took the device down and fenced the
		// epoch; Crash() drops every shard's volatile state.
		if err := h.eng.Crash(); err != nil {
			res.violate("Crash() after power loss: %v", err)
			return res, nil
		}
		h.inj.Disarm()
		rep, rerr := h.eng.Recover()
		if rerr != nil {
			res.violate("Recover failed: %v", rerr)
			return res, nil
		}
		res.Report = rep
		if len(rep.Shards) != cfg.Shards {
			res.violate("recovery report covers %d of %d shards", len(rep.Shards), cfg.Shards)
		}
		for sid, sr := range rep.Shards {
			if sr == nil {
				res.violate("shard %d: recovery report missing", sid)
				continue
			}
			if sr.RecoveredBlocks+len(sr.FailedBlocks) > sr.TrackedEntries {
				res.violate("shard %d report accounting: %d recovered + %d failed > %d tracked",
					sid, sr.RecoveredBlocks, len(sr.FailedBlocks), sr.TrackedEntries)
			}
			// Crash-only scenario: every tracked block must come back.
			for _, fb := range sr.FailedBlocks {
				res.violate("shard %d: recovery lost tracked block %#x: %s", sid, fb.Addr, fb.Reason)
			}
			for _, s := range sr.LostSlots {
				res.violate("shard %d: recovery lost shadow slot %d entirely", sid, s)
			}
		}
	} else {
		h.inj.Disarm()
	}

	if res.Crashed {
		h.readCheck("post-recovery", true)
		// Replay the interrupted operation and the rest of the workload
		// with injection disarmed.
		for i := h.crashOp; i >= 0 && i < len(h.ops); i++ {
			if opErr := h.runOp(i); opErr != nil {
				res.OpErrors++
				res.violate("replay op %d (%v %#x): unexpected error: %v", i, h.ops[i].kind, h.ops[i].addr, opErr)
				continue
			}
			if h.ops[i].kind == opWrite {
				h.committed[h.ops[i].addr] = i
			}
		}
	} else {
		h.readCheck("post-workload", false)
	}

	// Settle and verify every shard's full image.
	if err := h.eng.Flush(); err != nil {
		res.violate("Flush: %v", err)
		return res, nil
	}
	if err := h.eng.VerifyAll(); err != nil {
		res.violate("VerifyAll after replay: %v", err)
	}

	// A clean crash/recover round-trip on the flushed image must be
	// lossless on every shard.
	if err := h.eng.Crash(); err != nil {
		res.violate("clean-round Crash: %v", err)
	} else {
		rep, err := h.eng.Recover()
		switch {
		case err != nil:
			res.violate("clean-round Recover: %v", err)
		case !rep.Clean():
			res.violate("clean-round recovery lost blocks: %d failed, %d lost slots",
				rep.FailedBlocks(), rep.LostSlots())
		}
	}
	h.readCheck("final", false)
	return res, nil
}

// readCheck verifies every committed write reads back; with inFlightExempt
// the one write interrupted by the crash may hold either its old or its
// new value.
func (h *deviceHarness) readCheck(phase string, inFlightExempt bool) {
	res := h.res
	addrs := make([]uint64, 0, len(h.committed))
	for a := range h.committed {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		got, _, rdErr := h.eng.Read(a)
		if rdErr != nil {
			res.violate("%s: read %#x (committed op %d) failed: %v", phase, a, h.committed[a], rdErr)
			continue
		}
		want := lineFor(h.cfg.Seed, h.committed[a])
		if inFlightExempt && h.inFlight >= 0 && a == h.inFlightAddr {
			if got != want && got != lineFor(h.cfg.Seed, h.inFlight) {
				res.violate("%s: in-flight block %#x holds neither the old value (op %d) nor the new (op %d)",
					phase, a, h.committed[a], h.inFlight)
			}
			continue
		}
		if got != want {
			res.violate("%s: silent corruption at %#x: committed op %d does not read back", phase, a, h.committed[a])
		}
	}
	if inFlightExempt && h.inFlight >= 0 {
		if _, ok := h.committed[h.inFlightAddr]; !ok {
			got, _, rdErr := h.eng.Read(h.inFlightAddr)
			switch {
			case rdErr != nil:
				res.violate("%s: read in-flight %#x failed: %v", phase, h.inFlightAddr, rdErr)
			case got != (nvm.Line{}) && got != lineFor(h.cfg.Seed, h.inFlight):
				res.violate("%s: in-flight cold block %#x is neither zero nor the new value", phase, h.inFlightAddr)
			}
		}
	}
}

// DeviceRun executes one scenario against the engine-hosted sharded
// device, closed-loop (one request in flight device-wide, so boundary
// numbering is deterministic), and checks the same invariants as Run:
// every committed write reads back after recovery, the one in-flight write
// is old-or-new, every shard's recovery report accounts for its tracked
// blocks, and a clean crash/recover round-trip on the settled image loses
// nothing.
func DeviceRun(cfg DeviceConfig) (*DeviceResult, error) {
	h, err := newDeviceHarness(cfg, false)
	if err != nil {
		return nil, err
	}
	defer h.eng.Close()
	return h.run(0, 0, nil)
}

// DeviceCrashSweep probes the workload for its device-wide boundary
// count, then replays it crashing at every stride-th boundary — the
// sharded-device version of CrashSweep.
func DeviceCrashSweep(base DeviceConfig, stride int, logf func(string, ...any)) (*CampaignResult, error) {
	if stride <= 0 {
		stride = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	probe := base
	probe.CrashAt = -1
	pres, err := DeviceRun(probe)
	if err != nil {
		return nil, err
	}
	out := &CampaignResult{Boundaries: pres.Boundaries}
	out.collectDevice(probe, pres)
	logf("device crash sweep: %d shards, %d workload boundaries, stride %d", base.Shards, pres.Boundaries, stride)
	for k := 0; k < pres.Boundaries; k += stride {
		cfg := base
		cfg.CrashAt = k
		res, err := DeviceRun(cfg)
		if err != nil {
			return nil, err
		}
		if !res.Crashed {
			logf("note: crash-at %d never fired (run saw %d boundaries)", k, res.Boundaries)
		}
		out.collectDevice(cfg, res)
	}
	return out, nil
}

func (c *CampaignResult) collectDevice(cfg DeviceConfig, res *DeviceResult) {
	c.Runs++
	if len(res.Violations) > 0 {
		c.Failures = append(c.Failures, Failure{Repro: DeviceRepro(cfg), Violations: res.Violations})
	}
}
