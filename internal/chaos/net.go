package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/memctrl"
	"soteria/internal/netchaos"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/telemetry"
)

// NetConfig scripts one network chaos run: a sharded device behind a
// supervised devnet server, a seeded fault-injecting proxy in front of
// it, and a fleet of retrying clients pushing a deterministic workload
// through the proxy while the fault schedule advances and the
// supervisor kills and restarts the server.
type NetConfig struct {
	// Seed drives workload content, fault decisions and client jitter.
	Seed int64
	// Ops is the data-operation count per client (default 60).
	Ops int
	// Clients is the concurrent client count (default 3).
	Clients int
	// Shards is the device shard count (default 4).
	Shards int
	// Mode is the controller mode.
	Mode memctrl.Mode
	// Kills is how many kill/restart cycles to run mid-workload.
	Kills int
	// Schedule is the sequence of fault phases; empty means one clean
	// phase. FaultName names the schedule on repro lines.
	Schedule  []netchaos.Faults
	FaultName string
	// Pipeline, when > 0, switches every client to the pipelined batched
	// front end (devnet.DialPipe) with this many batch frames in flight.
	Pipeline int
	// Batch is the max ops per batch frame in pipelined mode (default 8).
	Batch int
	// OpTimeout is the per-attempt client deadline (default 1s).
	OpTimeout time.Duration
	// PhaseCap bounds each phase's wall time so a partition phase (no
	// acks arriving) still ends (default 600ms).
	PhaseCap time.Duration
	// Logf, when non-nil, receives progress diagnostics.
	Logf func(format string, args ...any)
}

func (cfg *NetConfig) fill() {
	if cfg.Ops <= 0 {
		cfg.Ops = 60
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = time.Second
	}
	if cfg.PhaseCap <= 0 {
		cfg.PhaseCap = 600 * time.Millisecond
	}
	if cfg.Pipeline > 0 && cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if len(cfg.Schedule) == 0 {
		cfg.Schedule = []netchaos.Faults{{Name: "clean"}}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// NetResult reports one network chaos run. The fields above Violations
// are fully determined by the config (every planned operation must be
// acknowledged for the run to pass), so Report() is byte-identical
// across runs of the same config. The diagnostic fields depend on
// scheduling and wall time and are excluded from Report().
type NetResult struct {
	Clients      int
	OpsPerClient int
	Pipeline     int
	Batch        int
	AckedWrites  int
	AckedReads   int
	Kills        int
	Schedule     []string
	Violations   []string

	// Diagnostics (nondeterministic run to run).
	Retries          uint64
	BatchRetransmits uint64
	Reconnects       uint64
	Timeouts         uint64
	BusyWaits        uint64
	DedupHits        uint64
	AppliedWrites    uint64
	Shed             uint64
	Panics           uint64
	Proxy            netchaos.Stats
}

func (r *NetResult) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Report renders the deterministic outcome: same config, same bytes.
func (r *NetResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net run: %d clients x %d ops, schedule [%s], %d kill/restart cycles\n",
		r.Clients, r.OpsPerClient, strings.Join(r.Schedule, " "), r.Kills)
	if r.Pipeline > 0 {
		fmt.Fprintf(&b, "front end: pipelined, window %d, batch %d\n", r.Pipeline, r.Batch)
	}
	fmt.Fprintf(&b, "acked: %d writes, %d reads\n", r.AckedWrites, r.AckedReads)
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "oracle: every acked write read back exactly, retried writes applied once\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "VIOLATION: %s\n", v)
		}
	}
	return b.String()
}

// Diagnostics renders the wall-clock-dependent counters.
func (r *NetResult) Diagnostics() string {
	return fmt.Sprintf(
		"diagnostics: retries %d, batch-retransmits %d, reconnects %d, timeouts %d, busy-waits %d, dedup-hits %d, applied-writes %d, shed %d, panics %d, proxy{conns %d refused %d resets %d corrupted %d truncated %d frames %d batch-frames %d}",
		r.Retries, r.BatchRetransmits, r.Reconnects, r.Timeouts, r.BusyWaits, r.DedupHits, r.AppliedWrites, r.Shed, r.Panics,
		r.Proxy.Conns, r.Proxy.Refused, r.Proxy.Resets, r.Proxy.CorruptedBytes, r.Proxy.TruncatedFrames, r.Proxy.FramesRelayed, r.Proxy.BatchFrames)
}

// NetRepro renders the cmd/chaos invocation that replays cfg.
func NetRepro(cfg NetConfig) string {
	name := cfg.FaultName
	if name == "" {
		name = "clean"
	}
	repro := fmt.Sprintf("go run ./cmd/chaos -net -seed %d -net-fault %s -writes %d -net-clients %d -kills %d -mode %s",
		cfg.Seed, name, cfg.Ops, cfg.Clients, cfg.Kills, ModeFlag(cfg.Mode))
	if cfg.Pipeline > 0 {
		repro += fmt.Sprintf(" -pipeline %d -net-batch %d", cfg.Pipeline, cfg.Batch)
	}
	return repro
}

// netClient is one workload driver: a resilient client with a private
// address region, so the expected content of every line it owns is
// known without cross-client coordination.
type netClient struct {
	c    *devnet.Client
	id   int
	opts devnet.Options
	rng  *rand.Rand
	last map[int]nvm.Line // slot -> last acknowledged content
	base uint64
}

const netWorkingSet = 16 // slots per client

func (w *netClient) addr(slot int) uint64 {
	return (w.base + uint64(slot)) * nvm.LineSize
}

// NetRun executes one scripted network chaos run and checks the
// end-to-end oracle: every acknowledged write reads back exactly, and
// the server-side applied-write counter matches the acknowledged count
// (a retried write that double-applied, or an unacknowledged write that
// leaked in, breaks the equality).
func NetRun(cfg NetConfig) (*NetResult, error) {
	cfg.fill()
	res := &NetResult{Clients: cfg.Clients, OpsPerClient: cfg.Ops, Kills: cfg.Kills,
		Pipeline: cfg.Pipeline, Batch: cfg.Batch}
	for _, f := range cfg.Schedule {
		res.Schedule = append(res.Schedule, f.String())
	}

	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   cfg.Mode,
		Key:    []byte("netchaos-campaign-key"),
		Shards: cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer dev.Close()

	serverReg := telemetry.NewRegistry()
	sup := netchaos.NewSupervisor(dev, devnet.ServerOptions{
		ReadStall:   time.Second,
		IdleTimeout: 30 * time.Second,
		Telemetry:   serverReg,
	}, cfg.Logf)
	addr, err := sup.Start()
	if err != nil {
		return nil, err
	}
	defer sup.Stop()

	proxy, err := netchaos.New(addr, cfg.Seed, cfg.Logf)
	if err != nil {
		return nil, err
	}
	defer proxy.Close()

	clientReg := telemetry.NewRegistry()
	workers := make([]*netClient, cfg.Clients)
	for i := range workers {
		sid := uint64(cfg.Seed)*1000003 + uint64(i) + 1
		if sid == 0 {
			sid = uint64(i) + 1
		}
		opts := devnet.Options{
			OpTimeout: cfg.OpTimeout,
			Retry: devnet.RetryPolicy{
				MaxAttempts: -1,
				MaxElapsed:  60 * time.Second,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
				RetryDown:   true,
			},
			Session:   sid,
			Seed:      cfg.Seed*31 + int64(i) + 1,
			Telemetry: clientReg,
		}
		workers[i] = &netClient{
			id:   i,
			opts: opts,
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			last: map[int]nvm.Line{},
			base: uint64(i) * 1024,
		}
		if cfg.Pipeline > 0 {
			// The pipe is single-goroutine; each worker dials its own
			// inside its goroutine.
			continue
		}
		c, err := devnet.DialWith(proxy.Addr(), opts)
		if err != nil {
			return nil, fmt.Errorf("chaos: dial client %d: %w", i, err)
		}
		defer c.Close()
		workers[i].c = c
	}

	// Shared progress counter: the driver advances phases and schedules
	// kills against it, with a wall cap so phases that block progress
	// (partition) still end.
	var acked atomic.Int64
	var ackedWrites, ackedReads atomic.Int64
	total := int64(cfg.Clients * cfg.Ops)

	var vmu sync.Mutex
	addViolation := func(format string, args ...any) {
		vmu.Lock()
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		vmu.Unlock()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *netClient) {
			defer wg.Done()
			if cfg.Pipeline > 0 {
				w.runPipelined(&cfg, proxy.Addr(), addViolation, &acked, &ackedWrites, &ackedReads)
				return
			}
			for j := 0; j < cfg.Ops; j++ {
				slot := w.rng.Intn(netWorkingSet)
				_, written := w.last[slot]
				if !written || j%3 != 2 {
					line := lineFor(cfg.Seed, w.id*1_000_000+j)
					if _, err := w.c.Write(w.addr(slot), &line); err != nil {
						addViolation("client %d write op %d failed through retries: %v", w.id, j, err)
						return
					}
					w.last[slot] = line
					ackedWrites.Add(1)
				} else {
					got, _, err := w.c.Read(w.addr(slot))
					if err != nil {
						addViolation("client %d read op %d failed through retries: %v", w.id, j, err)
						return
					}
					if got != w.last[slot] {
						addViolation("client %d slot %d: read returned data != last acknowledged write", w.id, slot)
						return
					}
					ackedReads.Add(1)
				}
				acked.Add(1)
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	// Driver: step the fault schedule and fire kills at acked-progress
	// thresholds (wall-capped).
	phases := len(cfg.Schedule)
	killAt := make([]int64, 0, cfg.Kills)
	for k := 1; k <= cfg.Kills; k++ {
		killAt = append(killAt, total*int64(k)/int64(cfg.Kills+1))
	}
	killIdx := 0
	maybeKill := func() {
		for killIdx < len(killAt) && acked.Load() >= killAt[killIdx] {
			killIdx++
			cfg.Logf("chaos: kill/restart cycle %d", killIdx)
			if err := sup.Kill(); err != nil {
				addViolation("kill cycle %d: %v", killIdx, err)
				return
			}
			time.Sleep(20 * time.Millisecond)
			if err := sup.Restart(); err != nil {
				cfg.Logf("chaos: restart cycle %d failed: %v", killIdx, err)
				addViolation("restart cycle %d: %v", killIdx, err)
				return
			}
		}
	}
	running := true
	for i := 0; i < phases && running; i++ {
		proxy.SetFaults(cfg.Schedule[i])
		target := total * int64(i+1) / int64(phases)
		deadline := time.Now().Add(cfg.PhaseCap)
		for acked.Load() < target && time.Now().Before(deadline) {
			maybeKill()
			select {
			case <-done:
				running = false
			case <-time.After(2 * time.Millisecond):
			}
			if !running {
				break
			}
		}
	}
	proxy.Clear()
	// Fire any kills the workload outran, then let it finish fault-free.
	maybeKill()
	for killIdx < len(killAt) {
		killAt[killIdx] = 0
		maybeKill()
	}
	<-done

	// Teardown oracle, over a clean connection straight to the server:
	// every line the workload acknowledged must read back exactly.
	verify, err := devnet.DialWith(sup.Addr(), devnet.Options{
		OpTimeout: 5 * time.Second,
		Retry:     devnet.RetryPolicy{MaxAttempts: 10, RetryDown: true, BaseBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: dial verify client: %w", err)
	}
	defer verify.Close()
	if err := verify.Flush(); err != nil {
		res.violate("final flush: %v", err)
	}
	for _, w := range workers {
		for slot := 0; slot < netWorkingSet; slot++ {
			want, ok := w.last[slot]
			if !ok {
				continue
			}
			got, _, err := verify.Read(w.addr(slot))
			if err != nil {
				res.violate("final read back client %d slot %d: %v", w.id, slot, err)
				continue
			}
			if got != want {
				res.violate("client %d slot %d: acknowledged write lost or mangled", w.id, slot)
			}
		}
	}
	if err := dev.VerifyAll(); err != nil {
		res.violate("device integrity after run: %v", err)
	}

	res.AckedWrites = int(ackedWrites.Load())
	res.AckedReads = int(ackedReads.Load())
	res.Kills = sup.Kills()
	res.Retries = clientReg.Counter("devnet_client_retries_total").Value()
	res.BatchRetransmits = clientReg.Counter("devnet_client_batch_retransmits_total").Value()
	res.Reconnects = clientReg.Counter("devnet_client_reconnects_total").Value()
	res.Timeouts = clientReg.Counter("devnet_client_timeouts_total").Value()
	res.BusyWaits = clientReg.Counter("devnet_client_busy_waits_total").Value()
	res.DedupHits = serverReg.Counter("devnet_server_dedup_hits_total").Value()
	res.AppliedWrites = serverReg.Counter("devnet_server_applied_writes_total").Value()
	res.Shed = serverReg.Counter("devnet_server_shed_total").Value()
	res.Panics = serverReg.Counter("devnet_server_handler_panics_total").Value()
	res.Proxy = proxy.Stats()

	// Exactly-once: the server applied precisely as many writes as the
	// clients got acknowledged — a dedup miss on a retry of a committed
	// write would push applied above acked; a phantom ack the other way.
	if res.AppliedWrites != uint64(res.AckedWrites) {
		res.violate("applied writes %d != acknowledged writes %d (retry applied twice or ack leaked)",
			res.AppliedWrites, res.AckedWrites)
	}
	if len(res.Violations) == 0 && res.AckedWrites+res.AckedReads != int(total) {
		res.violate("acked %d ops, planned %d", res.AckedWrites+res.AckedReads, total)
	}
	// A pipelined run must actually exercise the batched wire path (this
	// also pins the proxy's mirrored batch-op classifier to the protocol).
	if cfg.Pipeline > 0 && res.Proxy.BatchFrames == 0 {
		res.violate("pipelined run relayed no batch frames through the proxy")
	}
	return res, nil
}

// runPipelined drives one client's workload through a windowed batching
// pipe. Ordering contract: the pipe pipelines freely across slots but
// each slot is serialized here (a slot's next op is only submitted after
// its previous one completed), so read-your-write per slot holds and
// w.last stays the per-slot acknowledged-content oracle. The completion
// handler runs on this goroutine (inside Submit/Wait/Flush), so the
// slot state needs no locks.
func (w *netClient) runPipelined(cfg *NetConfig, addr string,
	addViolation func(format string, args ...any),
	acked, ackedWrites, ackedReads *atomic.Int64) {
	var busy [netWorkingSet]bool
	var pending [netWorkingSet]nvm.Line
	var opFail error
	p, err := devnet.DialPipe(addr, func(tag uint64, op uint8, data *nvm.Line, _ sim.Time, err error) {
		slot := int(tag)
		if err != nil {
			if opFail == nil {
				opFail = fmt.Errorf("slot %d: %w", slot, err)
			}
		} else {
			switch op {
			case device.BatchWrite:
				w.last[slot] = pending[slot]
				ackedWrites.Add(1)
			case device.BatchRead:
				if *data != w.last[slot] {
					addViolation("client %d slot %d: pipelined read returned data != last acknowledged write", w.id, slot)
				}
				ackedReads.Add(1)
			}
		}
		busy[slot] = false
		acked.Add(1)
	}, devnet.PipeOptions{Options: w.opts, Window: cfg.Pipeline, MaxBatch: cfg.Batch})
	if err != nil {
		addViolation("client %d: pipelined dial: %v", w.id, err)
		return
	}
	defer p.Close()
	for j := 0; j < cfg.Ops && opFail == nil; j++ {
		slot := w.rng.Intn(netWorkingSet)
		for busy[slot] && opFail == nil {
			if err := p.Wait(); err != nil && opFail == nil {
				opFail = err
			}
		}
		if opFail != nil {
			break
		}
		_, written := w.last[slot]
		if !written || j%3 != 2 {
			pending[slot] = lineFor(cfg.Seed, w.id*1_000_000+j)
			busy[slot] = true
			err = p.Submit(uint64(slot), device.BatchWrite, w.addr(slot), &pending[slot])
		} else {
			busy[slot] = true
			err = p.Submit(uint64(slot), device.BatchRead, w.addr(slot), nil)
		}
		if err != nil && opFail == nil {
			opFail = err
		}
	}
	if opFail == nil {
		if err := p.Flush(); err != nil {
			opFail = err
		}
	}
	if opFail != nil {
		addViolation("client %d: pipelined workload failed through retries: %v", w.id, opFail)
	}
}

// NetFaultSchedule maps a -net-fault flag value to a fault schedule.
func NetFaultSchedule(name string) ([]netchaos.Faults, error) {
	switch name {
	case "", "clean":
		return []netchaos.Faults{{Name: "clean"}}, nil
	case "latency":
		return []netchaos.Faults{{Name: "latency", Latency: 200 * time.Microsecond, Jitter: 400 * time.Microsecond}}, nil
	case "throttle":
		return []netchaos.Faults{{Name: "throttle", BandwidthBPS: 256 << 10}}, nil
	case "corrupt":
		return []netchaos.Faults{{Name: "corrupt", CorruptEvery: 700}}, nil
	case "reset":
		return []netchaos.Faults{{Name: "reset", ResetAfterBytes: 4000}}, nil
	case "truncate":
		return []netchaos.Faults{{Name: "truncate", TruncateEveryNthFrame: 9}}, nil
	case "partition":
		return []netchaos.Faults{
			{Name: "clean"},
			{Name: "partition", Partition: true},
			{Name: "heal"},
		}, nil
	case "combined":
		return []netchaos.Faults{
			{Name: "latency", Latency: 100 * time.Microsecond, Jitter: 200 * time.Microsecond},
			{Name: "corrupt", CorruptEvery: 900},
			{Name: "reset", ResetAfterBytes: 6000},
			{Name: "truncate", TruncateEveryNthFrame: 11},
			{Name: "partition", Partition: true},
			{Name: "heal"},
		}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown net fault %q (want clean|latency|throttle|corrupt|reset|truncate|partition|combined)", name)
	}
}

// netSweepCases is the standard sweep: every fault family alone, the
// combined schedule, and the combined schedule with kill/restart cycles.
var netSweepCases = []struct {
	fault string
	kills int
}{
	{"clean", 0},
	{"latency", 0},
	{"throttle", 0},
	{"corrupt", 0},
	{"reset", 0},
	{"truncate", 0},
	{"partition", 0},
	{"combined", 0},
	{"combined", 2},
}

// NetSweep runs the standard network chaos sweep and aggregates it like
// the crash sweeps: every failing case carries a one-line repro.
func NetSweep(base NetConfig, logf func(string, ...any)) (*CampaignResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := &CampaignResult{}
	for _, tc := range netSweepCases {
		cfg := base
		cfg.FaultName = tc.fault
		cfg.Kills = tc.kills
		sched, err := NetFaultSchedule(tc.fault)
		if err != nil {
			return nil, err
		}
		cfg.Schedule = sched
		res, err := NetRun(cfg)
		if err != nil {
			return nil, err
		}
		out.Runs++
		if len(res.Violations) > 0 {
			out.Failures = append(out.Failures, Failure{Repro: NetRepro(cfg), Violations: res.Violations})
		}
		logf("net sweep %s (kills %d): %d writes, %d reads, %d violations — %s",
			tc.fault, res.Kills, res.AckedWrites, res.AckedReads, len(res.Violations), res.Diagnostics())
	}
	return out, nil
}
