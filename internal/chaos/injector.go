// Package chaos is the crash-and-fault campaign harness. It drives a
// deterministic workload through a real memctrl.Controller while an
// inject.Hook cuts power at chosen write boundaries and sprinkles seeded
// device faults, then checks the recovery invariants the paper promises:
// every committed write decrypts and verifies after recovery, the shadow
// BMT root stays consistent, and the RecoveryReport never silently loses a
// tracked block. Every scenario is fully determined by its Config, so any
// failure is reproducible from the one-line command the harness prints.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"soteria/internal/inject"
	"soteria/internal/nvm"
)

// AppliedFault records one device fault the injector applied. The seed
// makes the schedule reproducible; the record makes failure reports
// readable.
type AppliedFault struct {
	Boundary int
	Class    string // "bit", "word" or "line"
	Addr     uint64
	Bit      uint
	Word     int
}

func (f AppliedFault) String() string {
	switch f.Class {
	case "bit":
		return fmt.Sprintf("boundary %d: flip bit %d of line %#x", f.Boundary, f.Bit, f.Addr)
	case "word":
		return fmt.Sprintf("boundary %d: kill word %d of line %#x", f.Boundary, f.Word, f.Addr)
	default:
		return fmt.Sprintf("boundary %d: kill line %#x", f.Boundary, f.Addr)
	}
}

// Injector implements inject.Hook. It numbers write boundaries following
// the conventions documented in package inject (each device write outside
// a sealed section is one boundary; a sealed transaction is a single
// boundary at its SealBegin; nested seals ride inside the outer one),
// panics with inject.PowerLoss at a target boundary, and applies seeded
// probabilistic device faults at boundaries.
type Injector struct {
	// Boundary is the index the next write boundary will get.
	Boundary int
	// CrashAt cuts power at that boundary; negative disables.
	CrashAt int
	// Fired reports whether the crash trigger went off.
	Fired bool
	// Applied lists the device faults injected so far.
	Applied []AppliedFault

	dev       *nvm.Device
	rng       *rand.Rand
	faultRate float64
	// faultCeil bounds fault targets from above: addresses at or past it
	// model on-chip ADR SRAM (the shadow BMT), which NVM cell faults
	// cannot reach. Zero means no bound.
	faultCeil uint64
	seals     inject.SealTracker
	disarmed  bool
}

// NewInjector builds an injector over the given device. rng drives the
// probabilistic fault schedule (may be nil when faultRate is zero).
func NewInjector(dev *nvm.Device, rng *rand.Rand, faultRate float64, faultCeil uint64) *Injector {
	return &Injector{dev: dev, CrashAt: -1, rng: rng, faultRate: faultRate, faultCeil: faultCeil}
}

// StopFaults ends probabilistic fault injection; crash targeting stays
// armed. Called once power has been lost: the fault schedule models wear
// during operation, not during the recovery that follows.
func (in *Injector) StopFaults() { in.faultRate = 0 }

// Disarm stops both crash targeting and fault injection. Boundary counting
// continues, so phase totals stay meaningful.
func (in *Injector) Disarm() {
	in.disarmed = true
	in.CrashAt = -1
	in.faultRate = 0
}

// Rearm restarts boundary numbering at zero with a fresh crash target, so
// a follow-on phase (recovery) can be swept independently. It also clears
// any seal depth left dangling by the PowerLoss unwind.
func (in *Injector) Rearm(crashAt int) {
	in.Boundary = 0
	in.CrashAt = crashAt
	in.Fired = false
	in.seals.Reset()
	in.disarmed = false
}

// Event implements inject.Hook.
func (in *Injector) Event(ev inject.Event) {
	// Act before Advance: if the boundary panics at an outermost SealBegin,
	// no seal has opened yet and the unwind leaves the tracker balanced.
	if in.seals.IsBoundary(ev) {
		in.boundary()
	}
	in.seals.Advance(ev)
}

func (in *Injector) boundary() {
	b := in.Boundary
	in.Boundary++
	if in.disarmed {
		return
	}
	if in.faultRate > 0 && in.rng.Float64() < in.faultRate {
		in.applyFault(b)
	}
	if in.CrashAt >= 0 && b == in.CrashAt {
		in.Fired = true
		panic(inject.PowerLoss{Boundary: b})
	}
}

// applyFault injects one random fault into a random previously-written
// line, drawing the class from the granularities internal/faultsim models:
// a transient cell upset (bit), a dead chip word (word — one uncorrectable
// ECC codeword) or a row failure at line scale (line).
func (in *Injector) applyFault(b int) {
	var lines []uint64
	in.dev.ForEachTouched(func(a uint64) {
		if in.faultCeil == 0 || a < in.faultCeil {
			lines = append(lines, a)
		}
	})
	if len(lines) == 0 {
		return
	}
	// ForEachTouched iterates a map; sort so the rng draw is deterministic.
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	addr := lines[in.rng.Intn(len(lines))]
	f := AppliedFault{Boundary: b, Addr: addr}
	switch p := in.rng.Float64(); {
	case p < 0.6:
		f.Class, f.Bit = "bit", uint(in.rng.Intn(nvm.LineSize*8))
		in.dev.FlipBit(addr, f.Bit)
	case p < 0.9:
		f.Class, f.Word = "word", in.rng.Intn(nvm.LineSize/8)
		in.dev.CorruptWord(addr, f.Word)
	default:
		f.Class = "line"
		in.dev.CorruptLine(addr)
	}
	in.Applied = append(in.Applied, f)
}
