package chaos

import (
	"testing"

	"soteria/internal/memctrl"
)

// FuzzStrategyCrashRecover fuzzes the full crash/recover scenario across
// every registered strategy: the fuzzer picks the workload seed, its
// length, the crash boundary and the scheme, and the scenario oracle
// asserts the contract — recovery never yields a verified-but-corrupt
// block (silent corruption), never panics with anything but the simulated
// power loss, and its report accounting stays consistent.
func FuzzStrategyCrashRecover(f *testing.F) {
	for i := range memctrl.Strategies() {
		f.Add(int64(7+i), 40, 13, byte(i))
	}
	f.Add(int64(99), 80, 0, byte(1))      // crash at the very first boundary
	f.Add(int64(5), 10, 1<<20, byte(2))   // crash point past the workload: clean run
	f.Fuzz(func(t *testing.T, seed int64, writes int, crashAt int, stratIdx byte) {
		strategies := memctrl.Strategies()
		strategy := strategies[int(stratIdx)%len(strategies)]
		if writes < 5 {
			writes = 5
		}
		if writes > 100 {
			writes = 100
		}
		if crashAt < 0 {
			crashAt = ^crashAt // flip, not negate: math.MinInt-safe
		}
		// Wrap most crash points into firing range, but keep a tail of
		// never-firing (clean) runs in the space.
		crashAt %= writes * 8
		cfg := Config{
			Seed:     seed,
			Writes:   writes,
			Mode:     memctrl.ModeSRC,
			Strategy: strategy,
			CrashAt:  crashAt, NestedCrashAt: -1,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%s: %s: %s", strategy, Repro(cfg), v)
		}
	})
}
