package chaos

import (
	"bytes"
	"testing"

	"soteria/internal/memctrl"
)

// TestDeviceReplayByteIdentical is the time-travel contract: record a
// crashing device scenario, then restore the checkpoint nearest the fault
// and re-execute — the replayed failure report must be byte-identical to
// the original, and the replayed event stream must match the recorded
// trace's tail exactly.
func TestDeviceReplayByteIdentical(t *testing.T) {
	for _, strategy := range []string{"soteria", "anubis-shadow"} {
		t.Run(strategy, func(t *testing.T) {
			cfg := DeviceConfig{Seed: 5, Writes: 120, Shards: 4, Mode: memctrl.ModeSAC, Strategy: strategy, CrashAt: -1}
			probe, _, err := DeviceRunTraced(cfg)
			if err != nil {
				t.Fatalf("probe: %v", err)
			}
			if probe.Boundaries == 0 {
				t.Fatalf("probe saw no boundaries")
			}
			// Crash deep into the workload so the checkpoint is taken well
			// past op 0 (a real mid-flight restore, not a fresh boot).
			cfg.CrashAt = probe.Boundaries * 3 / 4

			orig, tr, err := DeviceRunTraced(cfg)
			if err != nil {
				t.Fatalf("traced run: %v", err)
			}
			if !orig.Crashed {
				t.Fatalf("crash at %d never fired (%d boundaries)", cfg.CrashAt, orig.Boundaries)
			}
			if tr == nil || len(tr.Events) == 0 || len(tr.Ckpt) == 0 {
				t.Fatalf("traced run returned no usable trace: %+v", tr)
			}
			if tr.CkptOp > tr.CrashOp {
				t.Fatalf("checkpoint op %d is past the crash op %d", tr.CkptOp, tr.CrashOp)
			}
			if tr.CkptOp == 0 && tr.CrashOp > cfg.Writes/8 {
				t.Fatalf("checkpoint never advanced past op 0 (crash at op %d)", tr.CrashOp)
			}

			// The trace must survive its storage format.
			data := tr.Encode()
			tr2, err := DecodeReplayTrace(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(tr2.Encode(), data) {
				t.Fatalf("trace does not round-trip through encode/decode")
			}

			rep, err := DeviceReplay(tr2, t.Logf)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got, want := rep.Summary(), orig.Summary(); got != want {
				t.Fatalf("replayed summary differs from original\n--- original ---\n%s--- replayed ---\n%s", want, got)
			}
			if len(rep.Violations) != 0 {
				t.Fatalf("replay violations (trace divergence?): %v", rep.Violations)
			}
		})
	}
}

// TestDecodeReplayTraceRejectsCorruption: a mangled trace must come back
// as an error, never a panic or a half-filled trace.
func TestDecodeReplayTraceRejectsCorruption(t *testing.T) {
	cfg := DeviceConfig{Seed: 3, Writes: 60, Shards: 2, Mode: memctrl.ModeSAC, CrashAt: 25}
	_, tr, err := DeviceRunTraced(cfg)
	if err != nil || tr == nil {
		t.Fatalf("traced run: %v (trace %v)", err, tr != nil)
	}
	data := tr.Encode()
	if _, err := DecodeReplayTrace(data[:len(data)/2]); err == nil {
		t.Fatalf("truncated trace decoded without error")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := DecodeReplayTrace(flipped); err == nil {
		t.Fatalf("bit-flipped trace decoded without error")
	}
	if _, err := DecodeReplayTrace(nil); err == nil {
		t.Fatalf("empty trace decoded without error")
	}
}

// TestCheckpointSweepAllStrategies wires the checkpoint/restore leg
// through every registered strategy at a smoke-test scale: at every 7th
// crash point, restore-then-recover must be indistinguishable from
// straight-line recover.
func TestCheckpointSweepAllStrategies(t *testing.T) {
	for _, strategy := range memctrl.Strategies() {
		t.Run(strategy, func(t *testing.T) {
			res, err := CheckpointSweep(Config{Seed: 2, Writes: 40, Mode: memctrl.ModeSAC, Strategy: strategy, CrashAt: -1, NestedCrashAt: -1}, 7, nil)
			if err != nil {
				t.Fatalf("checkpoint sweep: %v", err)
			}
			if res.Boundaries == 0 || res.Runs < 2 {
				t.Fatalf("sweep too small: %d runs, %d boundaries", res.Runs, res.Boundaries)
			}
			for _, f := range res.Failures {
				t.Errorf("failure: %s\n  %v", f.Repro, f.Violations)
			}
		})
	}
}

// TestDeviceReproSelfContained: repro lines must carry the full flag set —
// in particular the strategy, which used to be dropped when a failure was
// found via -schemes.
func TestDeviceReproSelfContained(t *testing.T) {
	got := DeviceRepro(DeviceConfig{Seed: 9, Writes: 80, Shards: 8, Mode: memctrl.ModeSRC, Strategy: "triad-nvm", CrashAt: 17})
	want := "go run ./cmd/chaos -device -shards 8 -seed 9 -writes 80 -mode src -strategy triad-nvm -crash-at 17"
	if got != want {
		t.Fatalf("repro line:\n got %q\nwant %q", got, want)
	}
	// Defaulted fields are named explicitly so the line replays the same
	// scenario no matter what the defaults become later.
	got = DeviceRepro(DeviceConfig{Seed: 1, Writes: 60, Mode: memctrl.ModeSAC, CrashAt: -1})
	want = "go run ./cmd/chaos -device -shards 4 -seed 1 -writes 60 -mode sac -strategy soteria"
	if got != want {
		t.Fatalf("defaulted repro line:\n got %q\nwant %q", got, want)
	}
}
