package chaos

import (
	"strings"
	"testing"

	"soteria/internal/memctrl"
)

// TestTenantCrashSweepQuick crashes at every stride-th device boundary of
// a multi-tenant workload with an online rotation armed mid-way: every
// tenant's acked writes survive, no cross-tenant read ever succeeds, and
// the rotation completes — zero violations expected.
func TestTenantCrashSweepQuick(t *testing.T) {
	res, err := TenantCrashSweep(TenantConfig{
		Seed:     1,
		Writes:   30,
		Tenants:  3,
		Shards:   4,
		Mode:     memctrl.ModeSAC,
		CrashAt:  -1,
		RotateAt: 10,
	}, 25, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boundaries == 0 {
		t.Fatal("probe saw no boundaries")
	}
	for _, f := range res.Failures {
		t.Errorf("%s: %v", f.Repro, f.Violations)
	}
}

// TestTenantRunDeterministic pins determinism for the tenant leg: the
// same TenantConfig crashes at the same boundary on the same shard with
// the same counts, every time.
func TestTenantRunDeterministic(t *testing.T) {
	cfg := TenantConfig{Seed: 7, Writes: 40, Tenants: 3, Shards: 4,
		Mode: memctrl.ModeSAC, CrashAt: 60, RotateAt: 8}
	first, err := TenantRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Crashed {
		t.Fatalf("crash-at %d never fired (%d boundaries)", cfg.CrashAt, first.Boundaries)
	}
	if len(first.Violations) > 0 {
		t.Fatalf("violations: %v", first.Violations)
	}
	again, err := TenantRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.CrashBoundary != first.CrashBoundary || again.CrashShard != first.CrashShard ||
		again.Boundaries != first.Boundaries {
		t.Fatalf("replay diverged: crash %d/shard %d/%d boundaries, want %d/%d/%d",
			again.CrashBoundary, again.CrashShard, again.Boundaries,
			first.CrashBoundary, first.CrashShard, first.Boundaries)
	}
}

// TestTenantConformanceAllStrategies runs a coarse tenant crash sweep —
// rotation window armed — for every registered metadata-persistence
// strategy.
func TestTenantConformanceAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy sweep in -short mode")
	}
	results, err := TenantConformanceAll(TenantConfig{
		Seed:     2,
		Writes:   20,
		Tenants:  2,
		Shards:   2,
		Mode:     memctrl.ModeSAC,
		CrashAt:  -1,
		RotateAt: 6,
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(memctrl.Strategies()) {
		t.Fatalf("covered %d of %d strategies", len(results), len(memctrl.Strategies()))
	}
	for strategy, res := range results {
		for _, f := range res.Failures {
			t.Errorf("%s: %s: %v", strategy, f.Repro, f.Violations)
		}
	}
}

// TestTenantReproSelfContained: the repro line names every
// scenario-shaping knob, including the tenant count and rotation point.
func TestTenantReproSelfContained(t *testing.T) {
	repro := TenantRepro(TenantConfig{Seed: 3, Writes: 50, Tenants: 5,
		Mode: memctrl.ModeSRC, CrashAt: 12, RotateAt: 9})
	for _, want := range []string{"-tenants", "-tenant-count 5", "-seed 3",
		"-writes 50", "-mode src", "-strategy " + memctrl.DefaultStrategy,
		"-rotate-at 9", "-crash-at 12"} {
		if !strings.Contains(repro, want) {
			t.Errorf("repro %q missing %q", repro, want)
		}
	}
}
