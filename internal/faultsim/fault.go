package faultsim

import (
	"math"
	"math/rand"

	"soteria/internal/config"
)

// Fault is one device fault: a rectangle of a chip's (bank, row, col)
// space, active over a time window.
type Fault struct {
	Chip      int // global chip index; rank = Chip / ChipsPerRank
	Gran      Granularity
	Transient bool
	// Start is the arrival time in hours since the beginning of the
	// trial; End is when the fault stops being visible (scrub for
	// transients, end-of-life for permanents).
	Start, End float64
	// Fixed coordinates; wildcards are expressed by the rectangle
	// bounds in rect().
	Bank, Row, Col int
	// BankSpan is the number of consecutive banks a multi-bank fault
	// covers (>= 2); zero for other granularities.
	BankSpan int
}

// Rect is an inclusive rectangle of beats within one rank:
// banks [B0,B1], rows [R0,R1], cols [C0,C1].
type Rect struct {
	Rank           int
	B0, B1, R0, R1 int
	C0, C1         int
}

// rect expands a fault to its rectangle within its chip's rank-local
// address space.
func (f *Fault) rect(d config.DIMMConfig) Rect {
	r := Rect{
		Rank: f.Chip / d.ChipsPerRank,
		B0:   0, B1: d.Banks - 1,
		R0: 0, R1: d.Rows - 1,
		C0: 0, C1: d.Cols - 1,
	}
	switch f.Gran {
	case GranBit, GranWord:
		// A bit fault within a word and a word fault are identical at
		// beat granularity (Chipkill symbols are per-chip bytes of a
		// beat).
		r.B0, r.B1 = f.Bank, f.Bank
		r.R0, r.R1 = f.Row, f.Row
		r.C0, r.C1 = f.Col, f.Col
	case GranColumn:
		r.B0, r.B1 = f.Bank, f.Bank
		r.C0, r.C1 = f.Col, f.Col
	case GranRow:
		r.B0, r.B1 = f.Bank, f.Bank
		r.R0, r.R1 = f.Row, f.Row
	case GranBank, GranMultiRank:
		// Multi-rank faults (shared command/address circuitry) present
		// as the same bank failing in every rank; the mirror fault on
		// the peer rank is emitted at sampling time.
		r.B0, r.B1 = f.Bank, f.Bank
	case GranMultiBank:
		r.B0 = f.Bank
		r.B1 = mini(f.Bank+f.BankSpan-1, d.Banks-1)
	}
	return r
}

// overlapTime reports whether two activity windows intersect.
func overlapTime(a, b *Fault) bool {
	return a.Start < b.End && b.Start < a.End
}

// intersect returns the rectangle common to two faults on *different* chips
// of the same rank, and whether it is non-empty — the Chipkill-uncorrectable
// condition.
func intersect(a, b Rect) (Rect, bool) {
	if a.Rank != b.Rank {
		return Rect{}, false
	}
	out := Rect{
		Rank: a.Rank,
		B0:   maxi(a.B0, b.B0), B1: mini(a.B1, b.B1),
		R0: maxi(a.R0, b.R0), R1: mini(a.R1, b.R1),
		C0: maxi(a.C0, b.C0), C1: mini(a.C1, b.C1),
	}
	if out.B0 > out.B1 || out.R0 > out.R1 || out.C0 > out.C1 {
		return Rect{}, false
	}
	return out, true
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Beats returns the number of beats the rectangle covers.
func (r Rect) Beats() uint64 {
	return uint64(r.B1-r.B0+1) * uint64(r.R1-r.R0+1) * uint64(r.C1-r.C0+1)
}

// sampleFault draws one fault of the given mode at the given time.
// Multi-rank faults mirror onto the peer rank, so the caller may receive
// two faults.
func sampleFault(rng *rand.Rand, d config.DIMMConfig, gran Granularity, transient bool, t, end float64) []Fault {
	f := Fault{
		Chip:      rng.Intn(d.Chips),
		Gran:      gran,
		Transient: transient,
		Start:     t,
		End:       end,
		Bank:      rng.Intn(d.Banks),
		Row:       rng.Intn(d.Rows),
		Col:       rng.Intn(d.Cols),
	}
	if gran == GranMultiBank {
		// A multi-bank fault spans a small consecutive group of banks
		// (2-8), per the field-study classification — not the whole
		// device.
		f.BankSpan = 2 + rng.Intn(7)
	}
	if gran != GranMultiRank {
		return []Fault{f}
	}
	// Multi-rank: the same device position fails across ranks (lockstep
	// pairs); emit the mirror fault on the peer rank's chip.
	peer := f
	peer.Chip = (f.Chip + d.ChipsPerRank) % d.Chips
	return []Fault{f, peer}
}

// Uncorrectable computes the rectangles of Chipkill-uncorrectable beats
// given a trial's fault set: every pair of temporally overlapping faults on
// different chips of the same rank contributes its spatial intersection.
func Uncorrectable(d config.DIMMConfig, faults []Fault) []Rect {
	return UncorrectableK(d, faults, 1)
}

// UncorrectableK generalizes Uncorrectable to an ECC that corrects up to
// `correctChips` simultaneous chip-granular symbol errors per codeword
// (correctChips=1 is Chipkill-Correct; correctChips=2 models the "stronger
// ECC" alternative of §3.1/§6.2, e.g. double-Chipkill RS codes). A beat is
// uncorrectable when faults on more than correctChips distinct chips of one
// rank overlap it in space and time.
func UncorrectableK(d config.DIMMConfig, faults []Fault, correctChips int) []Rect {
	return appendUncorrectableK(nil, d, faults, correctChips)
}

// appendUncorrectableK is UncorrectableK appending into a caller-owned
// buffer, so the Monte Carlo hot loop can reuse one rectangle slice across
// trials.
func appendUncorrectableK(out []Rect, d config.DIMMConfig, faults []Fault, correctChips int) []Rect {
	if correctChips < 1 {
		correctChips = 1
	}
	need := correctChips + 1
	// Depth-first over fault combinations, pruning on empty spatial or
	// temporal intersection; fault counts per trial are tiny.
	var dfs func(start int, chosen []int, r Rect, tStart, tEnd float64)
	dfs = func(start int, chosen []int, r Rect, tStart, tEnd float64) {
		if len(chosen) == need {
			out = append(out, r)
			return
		}
		for i := start; i < len(faults); i++ {
			f := &faults[i]
			if len(chosen) > 0 {
				first := &faults[chosen[0]]
				if f.Chip/d.ChipsPerRank != first.Chip/d.ChipsPerRank {
					continue
				}
				dup := false
				for _, j := range chosen {
					if faults[j].Chip == f.Chip {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				if f.Start >= tEnd || tStart >= f.End {
					continue
				}
				nr, ok := intersect(r, f.rect(d))
				if !ok {
					continue
				}
				dfs(i+1, append(chosen, i), nr,
					math.Max(tStart, f.Start), math.Min(tEnd, f.End))
				continue
			}
			dfs(i+1, append(chosen, i), f.rect(d), f.Start, f.End)
		}
	}
	dfs(0, nil, Rect{}, 0, 0)
	return out
}
