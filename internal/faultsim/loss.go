package faultsim

import (
	"fmt"
	"sort"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/itree"
)

// The DIMM's physical-to-linear address mapping interleaves banks at
// one-row granularity (LSB to MSB: column, bank, row, rank), the
// conventional open-page mapping. Fine-grained bank interleaving matters
// for Soteria: it is what places a node's home copy and its clones in
// different banks with high probability, so a two-chip bank-fault
// intersection rarely kills every copy.

// interval is a half-open byte range [Lo, Hi).
type interval struct{ Lo, Hi uint64 }

// intervalSet is a merged, sorted list of disjoint intervals.
type intervalSet struct{ iv []interval }

func (s *intervalSet) add(lo, hi uint64) {
	if lo >= hi {
		return
	}
	s.iv = append(s.iv, interval{lo, hi})
}

// normalize sorts and merges.
func (s *intervalSet) normalize() {
	if len(s.iv) < 2 {
		return
	}
	sort.Slice(s.iv, func(i, j int) bool { return s.iv[i].Lo < s.iv[j].Lo })
	out := s.iv[:1]
	for _, v := range s.iv[1:] {
		last := &out[len(out)-1]
		if v.Lo <= last.Hi {
			if v.Hi > last.Hi {
				last.Hi = v.Hi
			}
			continue
		}
		out = append(out, v)
	}
	s.iv = out
}

// size returns the total bytes covered.
func (s *intervalSet) size() uint64 {
	var t uint64
	for _, v := range s.iv {
		t += v.Hi - v.Lo
	}
	return t
}

// touchesLine reports whether any byte of the 64-byte line at addr is in
// the set (binary search; the set must be normalized).
func (s *intervalSet) touchesLine(addr uint64) bool {
	lo, hi := addr, addr+64
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].Hi > lo })
	return i < len(s.iv) && s.iv[i].Lo < hi
}

// overlap returns the bytes of s that fall inside [lo, hi).
func (s *intervalSet) overlap(lo, hi uint64) uint64 {
	var t uint64
	for _, v := range s.iv {
		a, b := maxu(v.Lo, lo), minu(v.Hi, hi)
		if a < b {
			t += b - a
		}
	}
	return t
}

// minus returns size(s \ o); both sets must be normalized.
func (s *intervalSet) minus(o *intervalSet) uint64 {
	var t uint64
	j := 0
	for _, v := range s.iv {
		lo := v.Lo
		for j < len(o.iv) && o.iv[j].Hi <= lo {
			j++
		}
		k := j
		for lo < v.Hi {
			if k >= len(o.iv) || o.iv[k].Lo >= v.Hi {
				t += v.Hi - lo
				break
			}
			if o.iv[k].Lo > lo {
				t += o.iv[k].Lo - lo
			}
			lo = o.iv[k].Hi
			k++
		}
	}
	return t
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minu(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// linearIntervals converts a rank-space rectangle into linear byte
// intervals under the row-granular bank interleaving described above.
func linearIntervals(d config.DIMMConfig, r Rect, out *intervalSet) {
	beat := uint64(d.BytesPerBeat())
	rowBytes := uint64(d.Cols) * beat
	fullCols := r.C0 == 0 && r.C1 == d.Cols-1
	fullBanks := r.B0 == 0 && r.B1 == d.Banks-1
	base := func(row, bank int) uint64 {
		return ((uint64(r.Rank)*uint64(d.Rows)+uint64(row))*uint64(d.Banks) + uint64(bank)) * rowBytes
	}
	switch {
	case fullCols && fullBanks:
		// Contiguous across the whole row range.
		out.add(base(r.R0, 0), base(r.R1, d.Banks-1)+rowBytes)
	case fullCols:
		for row := r.R0; row <= r.R1; row++ {
			for bank := r.B0; bank <= r.B1; bank++ {
				out.add(base(row, bank), base(row, bank)+rowBytes)
			}
		}
	default:
		for row := r.R0; row <= r.R1; row++ {
			for bank := r.B0; bank <= r.B1; bank++ {
				lo := base(row, bank) + uint64(r.C0)*beat
				out.add(lo, lo+uint64(r.C1-r.C0+1)*beat)
			}
		}
	}
}

// Scheme is one protection scheme instantiated over the DIMM: a clone
// policy plus the layout it implies. Data capacity is the largest size
// whose metadata, clones and shadow region still fit on the DIMM.
type Scheme struct {
	Name   string
	Policy core.ClonePolicy
	Layout *itree.Layout
	// Secure is false for the plain (non-secure) memory, which has no
	// metadata and loses only L_error.
	Secure bool
	// RecomputableIntermediates models a BMT-style tree (§6.1): an
	// intermediate node is just a hash of its children, so a dead
	// intermediate node is regenerated rather than lost — only leaf
	// (encryption counter) faults render data unverifiable. The ToC
	// trades this recomputability away for parallel updates and
	// stronger replay resistance, which is exactly the gap Soteria's
	// clones fill.
	RecomputableIntermediates bool
	// RecomputableAbove generalizes RecomputableIntermediates to Triad-style
	// selective persistence: tree levels strictly above this threshold are
	// re-derived at recovery (relaxed levels rebuilt by bounded counter
	// search), so their faults do not lose coverage. For persisted levels N,
	// set N+1: level N+1's stored counters seed the recovery search and so
	// still matter, while everything above it is rewritten wholesale.
	// 0 means no levels are recomputable (unless RecomputableIntermediates).
	RecomputableAbove int
}

// recomputableAbove resolves the two recomputability knobs into one level
// threshold (0 = none).
func (s *Scheme) recomputableAbove() int {
	above := 0
	if s.RecomputableIntermediates {
		above = 1
	}
	if s.RecomputableAbove > above {
		above = s.RecomputableAbove
	}
	return above
}

// NonSecureScheme is the conventional memory: the whole DIMM is data.
func NonSecureScheme(d config.DIMMConfig) *Scheme {
	lay, err := itree.NewLayout(itree.Params{DataBytes: d.CapacityBytes(), CounterArity: 64, TreeArity: 8})
	if err != nil {
		panic(err)
	}
	return &Scheme{Name: "non-secure", Layout: lay, Secure: false}
}

// BuildScheme sizes a secure layout (with the policy's clones and a shadow
// region of the given slot count) to fit the DIMM capacity.
func BuildScheme(d config.DIMMConfig, policy core.ClonePolicy, shadowSlots uint64) (*Scheme, error) {
	capacity := d.CapacityBytes()
	// Binary search the largest data size (in 1 MiB steps) that fits.
	lo, hi := uint64(1), capacity>>20
	// Regions start on bank-stripe boundaries (one row per bank under
	// the row-granular interleave), so small regions — notably the tiny
	// upper-level clone regions — land in distinct banks.
	rowBytes := uint64(d.Cols * d.BytesPerBeat())
	build := func(mib uint64) (*itree.Layout, error) {
		probe, err := itree.NewLayout(itree.Params{DataBytes: mib << 20, CounterArity: 64, TreeArity: 8})
		if err != nil {
			return nil, err
		}
		return itree.NewLayout(itree.Params{
			DataBytes:     mib << 20,
			CounterArity:  64,
			TreeArity:     8,
			CloneDepths:   policy.Depths(probe.TopLevel()),
			ShadowEntries: shadowSlots,
			RegionAlign:   rowBytes,
			// Clones live at the bottom of the address space — the
			// opposite rank from the home copies on this two-rank
			// DIMM. Ranks fail independently under Chipkill, so a
			// same-rank double fault can never take a node and its
			// clone together.
			CloneRegionsFirst: true,
		})
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		lay, err := build(mid)
		if err != nil {
			return nil, err
		}
		if lay.Total <= capacity {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	lay, err := build(lo)
	if err != nil {
		return nil, err
	}
	if lay.Total > capacity {
		return nil, fmt.Errorf("faultsim: no layout fits %d bytes", capacity)
	}
	return &Scheme{Name: policy.Name, Policy: policy, Layout: lay, Secure: true}, nil
}

// Loss evaluates the paper's loss metrics for this scheme given a trial's
// uncorrectable rectangles:
//
//	lErr — bytes of the data region that themselves hold uncorrectable
//	       errors (lost on any memory, secure or not);
//	lUnv — error-free data bytes rendered unverifiable because every copy
//	       of some covering metadata node is uncorrectable (zero for the
//	       non-secure scheme).
//
// Data-MAC-region losses are not counted: a data MAC is recomputable from
// the (intact) ciphertext and counter, so its loss is repairable.
func (s *Scheme) Loss(d config.DIMMConfig, rects []Rect) (lErr, lUnv uint64) {
	if len(rects) == 0 {
		return 0, 0
	}
	var u intervalSet
	for _, r := range rects {
		linearIntervals(d, r, &u)
	}
	u.normalize()

	lErr = u.overlap(s.Layout.DataBase, s.Layout.DataBase+s.Layout.DataBytes)
	if !s.Secure {
		return lErr, 0
	}

	// For every tree level, a node is unverifiable only when its home
	// copy AND every clone intersect the uncorrectable set. Home losses
	// come from cheap interval math; the (permuted) clone copies of each
	// home-lost node are then probed individually — the candidate set is
	// already narrowed to the home losses, so enumeration stays small.
	var lost intervalSet
	above := s.recomputableAbove()
	for _, li := range s.Layout.Levels {
		if above > 0 && li.Level > above {
			continue // regenerate from children instead of losing coverage
		}
		lostIdx := lostNodeIndices(&u, li.Base, li.Nodes)
		for _, ix := range lostIdx {
			for i := ix.Lo; i < ix.Hi; i++ {
				dead := true
				for c := range li.CloneBases {
					a := s.Layout.CloneAddr(li.Level, i, c)
					if !u.touchesLine(a) {
						dead = false
						break
					}
				}
				if !dead {
					continue
				}
				lo, hi := s.Layout.CoverageOf(li.Level, i)
				lost.add(lo, hi)
			}
		}
	}
	lost.normalize()
	// Unverifiable counts only data that is not already lost to direct
	// errors (L_total = L_error + L_unverifiable is a disjoint sum in
	// Fig 12).
	lUnv = lost.minus(&u)
	return lErr, lUnv
}

// idxRange is a half-open range of node indices.
type idxRange struct{ Lo, Hi uint64 }

var _ = intersectIdx // retained for ablation experiments over unpermuted layouts

// lostNodeIndices returns the node-index ranges of a region whose 64-byte
// lines intersect the uncorrectable set.
func lostNodeIndices(u *intervalSet, base uint64, nodes uint64) []idxRange {
	end := base + nodes*itree.BlockSize
	var out []idxRange
	for _, v := range u.iv {
		lo, hi := maxu(v.Lo, base), minu(v.Hi, end)
		if lo >= hi {
			continue
		}
		i0 := (lo - base) / itree.BlockSize
		i1 := (hi - base + itree.BlockSize - 1) / itree.BlockSize
		if n := len(out); n > 0 && out[n-1].Hi >= i0 {
			if i1 > out[n-1].Hi {
				out[n-1].Hi = i1
			}
			continue
		}
		out = append(out, idxRange{i0, i1})
	}
	return out
}

// intersectIdx intersects two sorted index-range lists.
func intersectIdx(a, b []idxRange) []idxRange {
	var out []idxRange
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := maxu(a[i].Lo, b[j].Lo), minu(a[i].Hi, b[j].Hi)
		if lo < hi {
			out = append(out, idxRange{lo, hi})
		}
		if a[i].Hi < b[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}
