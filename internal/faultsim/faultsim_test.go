package faultsim

import (
	"math"
	"math/rand"
	"testing"

	"soteria/internal/config"
	"soteria/internal/core"
)

func dimm() config.DIMMConfig { return config.Table4().DIMM }

func TestModesScale(t *testing.T) {
	base := HopperModes()
	for _, fit := range []float64{1, 10, 80} {
		scaled := ScaledModes(base, fit)
		if got := TotalFIT(scaled); math.Abs(got-fit) > 1e-9 {
			t.Fatalf("scaled total = %v, want %v", got, fit)
		}
	}
	// Relative distribution preserved.
	s := ScaledModes(base, 10)
	r0 := base[0].TransientFIT / base[3].PermanentFIT
	r1 := s[0].TransientFIT / s[3].PermanentFIT
	if math.Abs(r0-r1) > 1e-9 {
		t.Fatal("scaling distorted the distribution")
	}
}

func TestDIMMGeometryCapacity(t *testing.T) {
	d := dimm()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 ranks x 16 banks x 16384 rows x 4096 cols x 8B = 16 GiB.
	if got := d.CapacityBytes(); got != 16<<30 {
		t.Fatalf("capacity = %d, want 16 GiB", got)
	}
}

func TestSameChipFaultsAreCorrectable(t *testing.T) {
	d := dimm()
	faults := []Fault{
		{Chip: 3, Gran: GranBank, Bank: 2, Start: 0, End: 100},
		{Chip: 3, Gran: GranRow, Bank: 2, Row: 5, Start: 0, End: 100},
	}
	if rects := Uncorrectable(d, faults); len(rects) != 0 {
		t.Fatalf("same-chip faults flagged uncorrectable: %v", rects)
	}
}

func TestDifferentRankFaultsIndependent(t *testing.T) {
	d := dimm()
	faults := []Fault{
		{Chip: 0, Gran: GranBank, Bank: 2, Start: 0, End: 100},
		{Chip: 9, Gran: GranBank, Bank: 2, Start: 0, End: 100}, // rank 1
	}
	if rects := Uncorrectable(d, faults); len(rects) != 0 {
		t.Fatal("cross-rank faults flagged uncorrectable")
	}
}

func TestOverlappingBankFaultsUncorrectable(t *testing.T) {
	d := dimm()
	faults := []Fault{
		{Chip: 0, Gran: GranBank, Bank: 7, Start: 0, End: 100},
		{Chip: 4, Gran: GranBank, Bank: 7, Start: 50, End: 150},
	}
	rects := Uncorrectable(d, faults)
	if len(rects) != 1 {
		t.Fatalf("rects = %v", rects)
	}
	r := rects[0]
	if r.B0 != 7 || r.B1 != 7 || r.R0 != 0 || r.R1 != d.Rows-1 {
		t.Fatalf("intersection %v", r)
	}
	if r.Beats() != uint64(d.Rows)*uint64(d.Cols) {
		t.Fatal("wrong beat count")
	}
}

func TestDisjointBanksNotUncorrectable(t *testing.T) {
	d := dimm()
	faults := []Fault{
		{Chip: 0, Gran: GranBank, Bank: 7, Start: 0, End: 100},
		{Chip: 4, Gran: GranBank, Bank: 8, Start: 0, End: 100},
	}
	if rects := Uncorrectable(d, faults); len(rects) != 0 {
		t.Fatal("disjoint banks flagged")
	}
}

func TestTimeDisjointFaultsNotUncorrectable(t *testing.T) {
	d := dimm()
	// A scrubbed transient that ended before the second fault arrived.
	faults := []Fault{
		{Chip: 0, Gran: GranBank, Bank: 7, Transient: true, Start: 0, End: 24},
		{Chip: 4, Gran: GranBank, Bank: 7, Start: 100, End: 200},
	}
	if rects := Uncorrectable(d, faults); len(rects) != 0 {
		t.Fatal("time-disjoint faults flagged")
	}
}

func TestMultiRankEmitsMirroredFault(t *testing.T) {
	d := dimm()
	rng := rand.New(rand.NewSource(1))
	fs := sampleFault(rng, d, GranMultiRank, false, 0, 100)
	if len(fs) != 2 {
		t.Fatalf("multi-rank produced %d faults", len(fs))
	}
	if fs[0].Chip/d.ChipsPerRank == fs[1].Chip/d.ChipsPerRank {
		t.Fatal("mirror fault in same rank")
	}
}

func TestLinearIntervalsRowBankMapping(t *testing.T) {
	d := dimm()
	var s intervalSet
	// One beat: rank 0, bank 1, row 0, col 3.
	linearIntervals(d, Rect{Rank: 0, B0: 1, B1: 1, R0: 0, R1: 0, C0: 3, C1: 3}, &s)
	s.normalize()
	rowBytes := uint64(d.Cols * 8)
	want := 1*rowBytes + 3*8
	if len(s.iv) != 1 || s.iv[0].Lo != want || s.iv[0].Hi != want+8 {
		t.Fatalf("mapping = %+v, want [%d,%d)", s.iv, want, want+8)
	}
	// Whole-rank rect is one contiguous interval of half the DIMM.
	var s2 intervalSet
	linearIntervals(d, Rect{Rank: 1, B0: 0, B1: d.Banks - 1, R0: 0, R1: d.Rows - 1, C0: 0, C1: d.Cols - 1}, &s2)
	s2.normalize()
	if len(s2.iv) != 1 || s2.size() != d.CapacityBytes()/2 {
		t.Fatalf("whole-rank mapping wrong: %d intervals, %d bytes", len(s2.iv), s2.size())
	}
	if s2.iv[0].Lo != d.CapacityBytes()/2 {
		t.Fatal("rank 1 does not start at mid-capacity")
	}
}

func TestIntervalSetOps(t *testing.T) {
	var a intervalSet
	a.add(10, 20)
	a.add(15, 30)
	a.add(40, 50)
	a.normalize()
	if a.size() != 30 {
		t.Fatalf("size = %d", a.size())
	}
	if a.overlap(0, 12) != 2 || a.overlap(45, 100) != 5 {
		t.Fatal("overlap wrong")
	}
	var b intervalSet
	b.add(12, 42)
	b.normalize()
	// a \ b = [10,12) + [42,50) = 10
	if got := a.minus(&b); got != 10 {
		t.Fatalf("minus = %d, want 10", got)
	}
}

func TestSchemesFitDIMM(t *testing.T) {
	d := dimm()
	for _, p := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := BuildScheme(d, p, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if s.Layout.Total > d.CapacityBytes() {
			t.Fatalf("%s layout (%d) exceeds DIMM (%d)", p.Name, s.Layout.Total, d.CapacityBytes())
		}
		// Data capacity must be the lion's share: the MAC region costs
		// 12.5%, metadata ~1.8%, clones a little more.
		if float64(s.Layout.DataBytes) < 0.85*float64(d.CapacityBytes()) {
			t.Fatalf("%s data capacity only %d", p.Name, s.Layout.DataBytes)
		}
	}
}

func TestLossBaselineVsCloned(t *testing.T) {
	d := dimm()
	base, _ := BuildScheme(d, core.Baseline(), 8192)
	src, _ := BuildScheme(d, core.SRC(), 8192)

	// Craft an uncorrectable word inside the baseline counter region.
	ctrBase := base.Layout.Levels[0].Base
	rect := rectForAddr(d, ctrBase)
	lErr, lUnv := base.Loss(d, []Rect{rect})
	if lErr != 0 {
		t.Fatalf("counter-region fault produced data error %d", lErr)
	}
	if lUnv != 64*64 {
		t.Fatalf("baseline unverifiable = %d, want 4096 (one counter block)", lUnv)
	}

	// The same *physical* fault against SRC: its counter region starts at
	// a similar offset; target SRC's own counter base. One dead home copy
	// with a live clone loses nothing.
	rect = rectForAddr(d, src.Layout.Levels[0].Base)
	_, lUnv = src.Loss(d, []Rect{rect})
	if lUnv != 0 {
		t.Fatalf("SRC lost %d bytes with a single dead home copy", lUnv)
	}

	// Kill the home AND the clone of SRC counter block 0: now it is lost.
	rects := []Rect{
		rectForAddr(d, src.Layout.NodeAddr(1, 0)),
		rectForAddr(d, src.Layout.CloneAddr(1, 0, 0)),
	}
	_, lUnv = src.Loss(d, rects)
	if lUnv != 64*64 {
		t.Fatalf("SRC with all copies dead lost %d, want 4096", lUnv)
	}
}

func TestLossDataRegion(t *testing.T) {
	d := dimm()
	ns := NonSecureScheme(d)
	rect := rectForAddr(d, 4096)
	lErr, lUnv := ns.Loss(d, []Rect{rect})
	if lErr != 64 || lUnv != 0 {
		t.Fatalf("non-secure loss = (%d,%d), want (64,0)", lErr, lUnv)
	}
}

func TestUnverifiableExcludesErroredData(t *testing.T) {
	d := dimm()
	base, _ := BuildScheme(d, core.Baseline(), 8192)
	// Kill counter block 0 AND one of the data blocks it covers.
	rects := []Rect{
		rectForAddr(d, base.Layout.NodeAddr(1, 0)),
		rectForAddr(d, 0), // data block 0
	}
	lErr, lUnv := base.Loss(d, rects)
	if lErr != 64 {
		t.Fatalf("lErr = %d", lErr)
	}
	if lUnv != 64*64-64 {
		t.Fatalf("lUnv = %d, want coverage minus the errored block", lUnv)
	}
}

// rectForAddr builds the 64-byte rectangle covering the line at a linear
// address (inverse of linearIntervals for a single line).
func rectForAddr(d config.DIMMConfig, addr uint64) Rect {
	beat := uint64(d.BytesPerBeat())
	rowBytes := uint64(d.Cols) * beat
	lineBeats := 64 / beat
	rowIdx := addr / rowBytes
	col := (addr % rowBytes) / beat
	bank := rowIdx % uint64(d.Banks)
	rr := rowIdx / uint64(d.Banks)
	row := rr % uint64(d.Rows)
	rank := rr / uint64(d.Rows)
	return Rect{
		Rank: int(rank),
		B0:   int(bank), B1: int(bank),
		R0: int(row), R1: int(row),
		C0: int(col), C1: int(col + lineBeats - 1),
	}
}

func TestRectForAddrRoundTrip(t *testing.T) {
	d := dimm()
	for _, addr := range []uint64{0, 64, 4096, 1 << 30, d.CapacityBytes() - 64} {
		var s intervalSet
		linearIntervals(d, rectForAddr(d, addr), &s)
		s.normalize()
		if len(s.iv) != 1 || s.iv[0].Lo != addr || s.iv[0].Hi != addr+64 {
			t.Fatalf("round trip of %#x gave %+v", addr, s.iv)
		}
	}
}

func TestMonteCarloShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo shape test is slow")
	}
	d := config.Table4()
	schemes := []*Scheme{NonSecureScheme(d.DIMM)}
	for _, p := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := BuildScheme(d.DIMM, p, 8192)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	res, err := Run(Options{Config: d, TotalFIT: 80, Trials: 60_000, Seed: 42, Conditional: true}, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight <= 0 || res.Weight >= 1 {
		t.Fatalf("importance weight %v out of range", res.Weight)
	}
	ns, base, src, sac := res.Schemes[0], res.Schemes[1], res.Schemes[2], res.Schemes[3]
	if ns.TotalLUnv != 0 {
		t.Fatal("non-secure memory reported unverifiable data")
	}
	if base.TotalLUnv == 0 {
		t.Fatal("baseline saw no unverifiable data at FIT=80; increase trials?")
	}
	// The paper's ordering: baseline >> SRC >= SAC.
	if src.TotalLUnv > base.TotalLUnv {
		t.Fatalf("SRC (%v) lost more than baseline (%v)", src.TotalLUnv, base.TotalLUnv)
	}
	if sac.TotalLUnv > src.TotalLUnv {
		t.Fatalf("SAC (%v) lost more than SRC (%v)", sac.TotalLUnv, src.TotalLUnv)
	}
	// L_error is scheme-independent (same physical faults, ~same data
	// capacity).
	if base.TotalLErr == 0 || ns.TotalLErr == 0 {
		t.Fatal("no direct data errors at FIT=80")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const lambda = 0.5
	n := 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-lambda) > 0.01 {
		t.Fatalf("poisson mean %v, want %v", mean, lambda)
	}
}

func TestSampleTrialDeterminism(t *testing.T) {
	cfg := config.Table4()
	modes := ScaledModes(HopperModes(), 80)
	a := SampleTrial(rand.New(rand.NewSource(5)), cfg, modes)
	b := SampleTrial(rand.New(rand.NewSource(5)), cfg, modes)
	if len(a) != len(b) {
		t.Fatal("non-deterministic sampling")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic fault")
		}
	}
}

func TestUncorrectableKStrongerECC(t *testing.T) {
	d := dimm()
	// Two overlapping bank faults: uncorrectable under Chipkill (k=1),
	// correctable under double-Chipkill (k=2).
	two := []Fault{
		{Chip: 0, Gran: GranBank, Bank: 7, Start: 0, End: 100},
		{Chip: 4, Gran: GranBank, Bank: 7, Start: 0, End: 100},
	}
	if len(UncorrectableK(d, two, 1)) == 0 {
		t.Fatal("k=1 missed a double-chip overlap")
	}
	if len(UncorrectableK(d, two, 2)) != 0 {
		t.Fatal("k=2 flagged a double-chip overlap")
	}
	// A third overlapping chip defeats k=2.
	three := append(two, Fault{Chip: 8, Gran: GranBank, Bank: 7, Start: 0, End: 100})
	rects := UncorrectableK(d, three, 2)
	if len(rects) != 1 {
		t.Fatalf("k=2 triple overlap rects = %v", rects)
	}
	if rects[0].B0 != 7 || rects[0].B1 != 7 {
		t.Fatalf("triple intersection %v", rects[0])
	}
	// Time-disjoint third fault: still correctable under k=2.
	three[2].Start, three[2].End = 200, 300
	if len(UncorrectableK(d, three, 2)) != 0 {
		t.Fatal("k=2 ignored temporal disjointness")
	}
	// Same chip twice never counts as two symbol errors.
	dup := append(two, Fault{Chip: 0, Gran: GranRow, Bank: 7, Row: 3, Start: 0, End: 100})
	if len(UncorrectableK(d, dup, 2)) != 0 {
		t.Fatal("same-chip faults double-counted")
	}
}

func TestUncorrectableKMatchesPairwise(t *testing.T) {
	d := dimm()
	rng := rand.New(rand.NewSource(11))
	modes := ScaledModes(HopperModes(), 5000)
	cfg := config.Table4()
	var buf []Fault
	for trial := 0; trial < 200; trial++ {
		faults := SampleTrialInto(rng, cfg, modes, buf)
		buf = faults
		a := Uncorrectable(d, faults)
		b := UncorrectableK(d, faults, 1)
		if len(a) != len(b) {
			t.Fatalf("trial %d: pairwise %d vs K %d rects", trial, len(a), len(b))
		}
	}
}

// Property: for random fault sets, per-scheme losses obey the structural
// order — non-secure never reports unverifiable data, clones never lose
// more than the baseline, and L_error is identical across secure schemes
// sharing the same data capacity.
func TestLossOrderingProperty(t *testing.T) {
	d := dimm()
	cfg := config.Table4()
	base, _ := BuildScheme(d, core.Baseline(), 8192)
	src, _ := BuildScheme(d, core.SRC(), 8192)
	sac, _ := BuildScheme(d, core.SAC(), 8192)
	rng := rand.New(rand.NewSource(21))
	modes := ScaledModes(HopperModes(), 20000) // absurd rate: many faults per trial
	for trial := 0; trial < 60; trial++ {
		faults := SampleTrial(rng, cfg, modes)
		rects := Uncorrectable(d, faults)
		_, bUnv := base.Loss(d, rects)
		_, sUnv := src.Loss(d, rects)
		_, aUnv := sac.Loss(d, rects)
		// SRC/SAC layouts differ from baseline's, so exact dominance
		// only binds between SRC and SAC (identical layouts except
		// upper-level clone count).
		if aUnv > sUnv {
			t.Fatalf("trial %d: SAC (%d) lost more than SRC (%d)", trial, aUnv, sUnv)
		}
		ns := NonSecureScheme(d)
		_, nUnv := ns.Loss(d, rects)
		if nUnv != 0 {
			t.Fatalf("trial %d: non-secure unverifiable %d", trial, nUnv)
		}
		// A BMT variant of the baseline can never lose more.
		bmt := *base
		bmt.RecomputableIntermediates = true
		_, mUnv := bmt.Loss(d, rects)
		if mUnv > bUnv {
			t.Fatalf("trial %d: BMT (%d) lost more than ToC (%d)", trial, mUnv, bUnv)
		}
		// Triad-style selective persistence sits between the two: with
		// persisted levels 1..N, levels above N+1 are recomputable — more
		// levels at risk than a BMT (level > 1), fewer than the plain ToC.
		triad := *base
		triad.RecomputableAbove = 2 // persistLevels=1
		_, tUnv := triad.Loss(d, rects)
		if tUnv > bUnv {
			t.Fatalf("trial %d: triad (%d) lost more than ToC (%d)", trial, tUnv, bUnv)
		}
		if mUnv > tUnv {
			t.Fatalf("trial %d: BMT (%d) lost more than triad (%d)", trial, mUnv, tUnv)
		}
	}
}

func TestECCModelStrings(t *testing.T) {
	if ECCChipkill.String() != "chipkill" || ECCMultiBit.String() != "chipkill+multibit" ||
		ECCDoubleChipkill.String() != "double-chipkill" {
		t.Fatal("ECC model strings wrong")
	}
	if ECCChipkill.minFaultsFor() != 2 || ECCDoubleChipkill.minFaultsFor() != 3 {
		t.Fatal("minFaultsFor wrong")
	}
}

func TestMultiBitECCDropsOnlySmallOverlaps(t *testing.T) {
	d := dimm()
	bitPair := []Fault{
		{Chip: 0, Gran: GranBit, Bank: 3, Row: 9, Col: 40, Start: 0, End: 10},
		{Chip: 5, Gran: GranWord, Bank: 3, Row: 9, Col: 40, Start: 0, End: 10},
	}
	if len(ECCMultiBit.rectsFor(d, bitPair)) != 0 {
		t.Fatal("multi-bit ECC failed to absorb a bit/word overlap")
	}
	if len(ECCChipkill.rectsFor(d, bitPair)) != 1 {
		t.Fatal("chipkill should flag the bit/word overlap")
	}
	structured := []Fault{
		{Chip: 0, Gran: GranBit, Bank: 3, Row: 9, Col: 40, Start: 0, End: 10},
		{Chip: 5, Gran: GranRow, Bank: 3, Row: 9, Start: 0, End: 10},
	}
	if len(ECCMultiBit.rectsFor(d, structured)) != 1 {
		t.Fatal("multi-bit ECC must not absorb a structured overlap")
	}
}
