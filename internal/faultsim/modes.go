// Package faultsim reproduces the FaultSim methodology (Roberts & Nair,
// "FAULTSIM: A fast, configurable memory-resilience simulator") used by the
// paper's reliability evaluation (§4, Table 4): Monte Carlo simulation of
// DRAM/NVM device faults over a five-year lifetime, with fault granularities
// and rates drawn from the Hopper field study (Sridharan et al., "Memory
// Errors in Modern Systems"), evaluated under Chipkill-Correct.
//
// A fault is a rectangle in a chip's (bank, row, column) space. Chipkill
// corrects anything confined to one chip of a rank; two temporally
// overlapping faults on different chips of the same rank whose rectangles
// intersect produce uncorrectable words in the intersection. The package
// then maps uncorrectable addresses onto the secure-memory layout
// (data / counters / tree levels / clone regions) and computes the paper's
// loss metrics: L_error, L_unverifiable and UDR (§5.3).
package faultsim

// Granularity is the spatial extent of one fault within a chip.
type Granularity int

// Fault granularities, matching the Hopper field-study classification used
// by FaultSim and by Table 4's failure distribution.
const (
	GranBit Granularity = iota
	GranWord
	GranColumn
	GranRow
	GranBank
	GranMultiBank
	GranMultiRank
	granCount
)

func (g Granularity) String() string {
	return [...]string{"bit", "word", "column", "row", "bank", "multi-bank", "multi-rank"}[g]
}

// Mode couples a granularity with its transient and permanent FIT rates
// (failures per 10^9 device-hours, per chip).
type Mode struct {
	Gran         Granularity
	TransientFIT float64
	PermanentFIT float64
}

// HopperModes returns the per-chip fault rates reported for the Hopper
// supercomputer's DDR-3 devices (Sridharan et al.), the distribution named
// in Table 4. Total ~= 66 FIT per chip.
func HopperModes() []Mode {
	return []Mode{
		{GranBit, 14.2, 18.6},
		{GranWord, 1.4, 0.3},
		{GranColumn, 1.4, 5.6},
		{GranRow, 0.2, 8.2},
		{GranBank, 0.8, 10.0},
		{GranMultiBank, 0.3, 1.4},
		{GranMultiRank, 0.9, 2.8},
	}
}

// TotalFIT sums all rates in the mode table.
func TotalFIT(modes []Mode) float64 {
	var t float64
	for _, m := range modes {
		t += m.TransientFIT + m.PermanentFIT
	}
	return t
}

// ScaledModes rescales a mode table so the per-chip total equals totalFIT,
// preserving the relative distribution — how the paper sweeps FIT from 1 to
// 80 "to model a variety of reliability scenarios due to differing NVM
// technologies" (§4).
func ScaledModes(modes []Mode, totalFIT float64) []Mode {
	cur := TotalFIT(modes)
	if cur == 0 {
		return modes
	}
	s := totalFIT / cur
	out := make([]Mode, len(modes))
	for i, m := range modes {
		out[i] = Mode{Gran: m.Gran, TransientFIT: m.TransientFIT * s, PermanentFIT: m.PermanentFIT * s}
	}
	return out
}
