package faultsim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"soteria/internal/config"
)

// Options configures a Monte Carlo run.
type Options struct {
	Config config.FaultSimConfig
	// TotalFIT is the per-chip failure rate (the paper sweeps 1..80).
	TotalFIT float64
	// Trials overrides Config.Trials when non-zero.
	Trials int
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds parallelism (default: GOMAXPROCS).
	Workers int
	// Conditional enables importance sampling: trials are drawn
	// conditioned on at least two faults arriving (the only trials that
	// can produce Chipkill-uncorrectable errors) and every loss is
	// weighted by P(N >= 2). This gives the same expectation as plain
	// sampling with orders of magnitude fewer wasted trials — at FIT 80
	// a 16 GB DIMM sees ~0.06 faults per five-year lifetime, so double
	// faults are ~1e-6 of raw trials.
	Conditional bool
	// ECC selects the correction model (default Chipkill).
	ECC ECCModel
}

// ECCModel is the module-level error correction the Monte Carlo assumes.
type ECCModel int

// ECC models for the §3.1/§6.2 stronger-ECC comparison.
const (
	// ECCChipkill corrects any single-chip fault per codeword
	// (Table 4's repair mechanism).
	ECCChipkill ECCModel = iota
	// ECCMultiBit is Chipkill plus stronger multi-bit correction (BCH
	// style, the §6.2 "stronger code" suggestion): overlaps of two
	// *bit/word-granularity* faults are corrected, but structured
	// faults (row/column/bank) still present whole-symbol errors on two
	// chips and remain uncorrectable.
	ECCMultiBit
	// ECCDoubleChipkill corrects two simultaneous chip-granular symbol
	// errors per codeword (an expensive hypothetical upper bound).
	ECCDoubleChipkill
)

func (m ECCModel) String() string {
	return [...]string{"chipkill", "chipkill+multibit", "double-chipkill"}[m]
}

// rectsFor computes the uncorrectable beats under the model.
func (m ECCModel) rectsFor(d config.DIMMConfig, faults []Fault) []Rect {
	switch m {
	case ECCDoubleChipkill:
		return UncorrectableK(d, faults, 2)
	case ECCMultiBit:
		// Pairwise overlaps, dropping bit/word x bit/word coincidences
		// (a couple of corrupt bits per codeword: within multi-bit
		// correction strength).
		var out []Rect
		for i := 0; i < len(faults); i++ {
			for j := i + 1; j < len(faults); j++ {
				a, b := &faults[i], &faults[j]
				if a.Chip == b.Chip || a.Chip/d.ChipsPerRank != b.Chip/d.ChipsPerRank || !overlapTime(a, b) {
					continue
				}
				if smallGran(a.Gran) && smallGran(b.Gran) {
					continue
				}
				if r, ok := intersect(a.rect(d), b.rect(d)); ok {
					out = append(out, r)
				}
			}
		}
		return out
	default:
		return UncorrectableK(d, faults, 1)
	}
}

func smallGran(g Granularity) bool { return g == GranBit || g == GranWord }

// minFaultsFor returns the smallest fault count that can defeat the model.
func (m ECCModel) minFaultsFor() int {
	if m == ECCDoubleChipkill {
		return 3
	}
	return 2
}

// SchemeResult accumulates per-scheme losses over all trials. Loss sums
// are expectation-weighted bytes (equal to raw sums when Conditional is
// off).
type SchemeResult struct {
	Name string
	// DataBytes is the scheme's protected data capacity.
	DataBytes uint64
	// TrialsWithUE counts (conditional) trials with uncorrectable loss.
	TrialsWithUE int
	// TrialsWithUnv counts trials that lost verifiability of any data.
	TrialsWithUnv int
	// TotalLErr / TotalLUnv are the weighted per-lifetime expected loss
	// sums in bytes.
	TotalLErr float64
	TotalLUnv float64
}

// UDR returns the Unverifiable Data Ratio: expected unverifiable bytes per
// byte of memory over the simulated lifetime (§5.3).
func (r SchemeResult) UDR(trials int) float64 {
	if trials == 0 || r.DataBytes == 0 {
		return 0
	}
	return r.TotalLUnv / (float64(trials) * float64(r.DataBytes))
}

// ErrorRatio is the analogous ratio for direct data loss (L_error).
func (r SchemeResult) ErrorRatio(trials int) float64 {
	if trials == 0 || r.DataBytes == 0 {
		return 0
	}
	return r.TotalLErr / (float64(trials) * float64(r.DataBytes))
}

// Result is a full Monte Carlo outcome.
type Result struct {
	Trials   int
	TotalFIT float64
	Schemes  []SchemeResult
	// FaultTrials counts trials that saw at least one fault at all.
	FaultTrials int
	// Weight is the importance weight applied per conditional trial
	// (1 when Conditional is off).
	Weight float64
}

// poisson draws a Poisson(lambda) variate (Knuth's method; lambda is small
// in every use here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<20 {
			panic("faultsim: poisson runaway (lambda too large)")
		}
	}
}

// poissonAtLeast2 draws from Poisson(lambda) conditioned on the outcome
// being >= 2, by inverse-CDF over the truncated distribution.
func poissonAtLeast2(rng *rand.Rand, lambda float64) int {
	p0 := math.Exp(-lambda)
	p1 := p0 * lambda
	norm := 1 - p0 - p1
	if norm <= 0 {
		return 2
	}
	u := rng.Float64() * norm
	k := 2
	pk := p1 * lambda / 2
	for {
		if u < pk || k > 1000 {
			return k
		}
		u -= pk
		k++
		pk *= lambda / float64(k)
	}
}

// modeDist flattens a mode table into a sampleable (granularity, transient)
// distribution.
type modeDist struct {
	grans      []Granularity
	transients []bool
	cum        []float64 // cumulative rates
	total      float64
}

func newModeDist(modes []Mode) *modeDist {
	d := &modeDist{}
	for _, m := range modes {
		for _, k := range []struct {
			fit float64
			tr  bool
		}{{m.TransientFIT, true}, {m.PermanentFIT, false}} {
			if k.fit <= 0 {
				continue
			}
			d.total += k.fit
			d.grans = append(d.grans, m.Gran)
			d.transients = append(d.transients, k.tr)
			d.cum = append(d.cum, d.total)
		}
	}
	return d
}

func (d *modeDist) sample(rng *rand.Rand) (Granularity, bool) {
	u := rng.Float64() * d.total
	for i, c := range d.cum {
		if u < c {
			return d.grans[i], d.transients[i]
		}
	}
	return d.grans[len(d.grans)-1], d.transients[len(d.transients)-1]
}

// sampleN places n fault events at uniform times with mode-proportional
// granularities.
func sampleN(rng *rand.Rand, cfg config.FaultSimConfig, dist *modeDist, n int) []Fault {
	hours := cfg.Years * 365 * 24
	scrub := cfg.ScrubInterval.Hours()
	var faults []Fault
	for i := 0; i < n; i++ {
		gran, transient := dist.sample(rng)
		t := rng.Float64() * hours
		end := hours + 1
		if transient && scrub > 0 {
			end = math.Min(t+scrub, hours+1)
		}
		faults = append(faults, sampleFault(rng, cfg.DIMM, gran, transient, t, end)...)
	}
	return faults
}

// SampleTrial draws one unconditioned trial's fault set over the configured
// lifetime.
func SampleTrial(rng *rand.Rand, cfg config.FaultSimConfig, modes []Mode) []Fault {
	dist := newModeDist(modes)
	hours := cfg.Years * 365 * 24
	lambda := dist.total * 1e-9 * hours * float64(cfg.DIMM.Chips)
	return sampleN(rng, cfg, dist, poisson(rng, lambda))
}

// Run executes the Monte Carlo simulation for every scheme over a shared
// fault stream (schemes see identical fault histories, like the paper's
// common FaultSim traces).
func Run(opt Options, schemes []*Scheme) (*Result, error) {
	trials := opt.Trials
	if trials == 0 {
		trials = opt.Config.Trials
	}
	if trials <= 0 {
		return nil, fmt.Errorf("faultsim: trials must be positive")
	}
	if err := opt.Config.DIMM.Validate(); err != nil {
		return nil, err
	}
	dist := newModeDist(ScaledModes(HopperModes(), opt.TotalFIT))
	hours := opt.Config.Years * 365 * 24
	lambda := dist.total * 1e-9 * hours * float64(opt.Config.DIMM.Chips)

	weight := 1.0
	if opt.Conditional {
		// P(N >= 2): the probability mass the conditional trials
		// represent.
		weight = 1 - math.Exp(-lambda)*(1+lambda)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	res := &Result{Trials: trials, TotalFIT: opt.TotalFIT, Weight: weight}
	res.Schemes = make([]SchemeResult, len(schemes))
	for i, s := range schemes {
		res.Schemes[i] = SchemeResult{Name: s.Name, DataBytes: s.Layout.DataBytes}
	}

	type partial struct {
		schemes     []SchemeResult
		faultTrials int
	}
	var wg sync.WaitGroup
	parts := make([]partial, workers)
	per := trials / workers
	extra := trials % workers
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*1_000_003))
			p := partial{schemes: make([]SchemeResult, len(schemes))}
			for t := 0; t < n; t++ {
				var faults []Fault
				if opt.Conditional {
					faults = sampleN(rng, opt.Config, dist, poissonAtLeast2(rng, lambda))
				} else {
					faults = sampleN(rng, opt.Config, dist, poisson(rng, lambda))
				}
				if len(faults) > 0 {
					p.faultTrials++
				}
				if len(faults) < opt.ECC.minFaultsFor() {
					continue // within the code's correction capability
				}
				rects := opt.ECC.rectsFor(opt.Config.DIMM, faults)
				if len(rects) == 0 {
					continue
				}
				for i, s := range schemes {
					lErr, lUnv := s.Loss(opt.Config.DIMM, rects)
					if lErr > 0 || lUnv > 0 {
						p.schemes[i].TrialsWithUE++
					}
					if lUnv > 0 {
						p.schemes[i].TrialsWithUnv++
					}
					p.schemes[i].TotalLErr += weight * float64(lErr)
					p.schemes[i].TotalLUnv += weight * float64(lUnv)
				}
			}
			parts[w] = p
		}(w, n)
	}
	wg.Wait()
	for _, p := range parts {
		res.FaultTrials += p.faultTrials
		for i := range schemes {
			res.Schemes[i].TrialsWithUE += p.schemes[i].TrialsWithUE
			res.Schemes[i].TrialsWithUnv += p.schemes[i].TrialsWithUnv
			res.Schemes[i].TotalLErr += p.schemes[i].TotalLErr
			res.Schemes[i].TotalLUnv += p.schemes[i].TotalLUnv
		}
	}
	return res, nil
}
