package faultsim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"soteria/internal/config"
	"soteria/internal/telemetry"
)

// DefaultBlockSize is the number of trials per deterministic RNG block
// when Options.BlockSize is zero. Each block draws from its own RNG
// stream derived from the master seed, so results are bit-identical for
// any worker count.
const DefaultBlockSize = 4096

// Options configures a Monte Carlo run.
type Options struct {
	Config config.FaultSimConfig
	// TotalFIT is the per-chip failure rate (the paper sweeps 1..80).
	TotalFIT float64
	// Trials overrides Config.Trials when non-zero.
	Trials int
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds parallelism (default: GOMAXPROCS). Results do not
	// depend on it: trials are scheduled in fixed-size blocks with
	// per-block RNG streams, and block partials merge in block order.
	Workers int
	// BlockSize is the trials-per-block granularity of the deterministic
	// schedule (default DefaultBlockSize). Results depend on it (it
	// defines the RNG streams), so treat it as part of the seed.
	BlockSize int
	// Progress, when non-nil, is called after each completed block with
	// the cumulative number of finished trials. It may be called
	// concurrently from multiple workers.
	Progress func(doneTrials, totalTrials int)
	// Conditional enables importance sampling: trials are drawn
	// conditioned on at least two faults arriving (the only trials that
	// can produce Chipkill-uncorrectable errors) and every loss is
	// weighted by P(N >= 2). This gives the same expectation as plain
	// sampling with orders of magnitude fewer wasted trials — at FIT 80
	// a 16 GB DIMM sees ~0.06 faults per five-year lifetime, so double
	// faults are ~1e-6 of raw trials.
	Conditional bool
	// ECC selects the correction model (default Chipkill).
	ECC ECCModel
}

// ECCModel is the module-level error correction the Monte Carlo assumes.
type ECCModel int

// ECC models for the §3.1/§6.2 stronger-ECC comparison.
const (
	// ECCChipkill corrects any single-chip fault per codeword
	// (Table 4's repair mechanism).
	ECCChipkill ECCModel = iota
	// ECCMultiBit is Chipkill plus stronger multi-bit correction (BCH
	// style, the §6.2 "stronger code" suggestion): overlaps of two
	// *bit/word-granularity* faults are corrected, but structured
	// faults (row/column/bank) still present whole-symbol errors on two
	// chips and remain uncorrectable.
	ECCMultiBit
	// ECCDoubleChipkill corrects two simultaneous chip-granular symbol
	// errors per codeword (an expensive hypothetical upper bound).
	ECCDoubleChipkill
)

func (m ECCModel) String() string {
	return [...]string{"chipkill", "chipkill+multibit", "double-chipkill"}[m]
}

// appendRects appends the uncorrectable beats under the model to buf and
// returns the extended slice (buf may be nil; reusing it across trials
// keeps the hot loop allocation-free).
func (m ECCModel) appendRects(buf []Rect, d config.DIMMConfig, faults []Fault) []Rect {
	switch m {
	case ECCDoubleChipkill:
		return appendUncorrectableK(buf, d, faults, 2)
	case ECCMultiBit:
		// Pairwise overlaps, dropping bit/word x bit/word coincidences
		// (a couple of corrupt bits per codeword: within multi-bit
		// correction strength).
		for i := 0; i < len(faults); i++ {
			for j := i + 1; j < len(faults); j++ {
				a, b := &faults[i], &faults[j]
				if a.Chip == b.Chip || a.Chip/d.ChipsPerRank != b.Chip/d.ChipsPerRank || !overlapTime(a, b) {
					continue
				}
				if smallGran(a.Gran) && smallGran(b.Gran) {
					continue
				}
				if r, ok := intersect(a.rect(d), b.rect(d)); ok {
					buf = append(buf, r)
				}
			}
		}
		return buf
	default:
		return appendUncorrectableK(buf, d, faults, 1)
	}
}

// rectsFor computes the uncorrectable beats under the model.
func (m ECCModel) rectsFor(d config.DIMMConfig, faults []Fault) []Rect {
	return m.appendRects(nil, d, faults)
}

func smallGran(g Granularity) bool { return g == GranBit || g == GranWord }

// minFaultsFor returns the smallest fault count that can defeat the model.
func (m ECCModel) minFaultsFor() int {
	if m == ECCDoubleChipkill {
		return 3
	}
	return 2
}

// SchemeResult accumulates per-scheme losses over all trials. Loss sums
// are expectation-weighted bytes (equal to raw sums when Conditional is
// off).
type SchemeResult struct {
	Name string
	// DataBytes is the scheme's protected data capacity.
	DataBytes uint64
	// TrialsWithUE counts (conditional) trials with uncorrectable loss.
	TrialsWithUE int
	// TrialsWithUnv counts trials that lost verifiability of any data.
	TrialsWithUnv int
	// TotalLErr / TotalLUnv are the weighted per-lifetime expected loss
	// sums in bytes.
	TotalLErr float64
	TotalLUnv float64
	// SumLUnvSq is the sum of squared per-trial weighted unverifiable
	// losses, kept so the UDR estimator carries a standard error
	// (UDRSigma) — the statistical cross-check between importance
	// sampling and plain sampling depends on it.
	SumLUnvSq float64
}

// UDR returns the Unverifiable Data Ratio: expected unverifiable bytes per
// byte of memory over the simulated lifetime (§5.3).
func (r SchemeResult) UDR(trials int) float64 {
	if trials == 0 || r.DataBytes == 0 {
		return 0
	}
	return r.TotalLUnv / (float64(trials) * float64(r.DataBytes))
}

// UDRSigma returns the standard error of UDR(trials), estimated from the
// per-trial second moment of the (weighted) unverifiable-loss samples.
func (r SchemeResult) UDRSigma(trials int) float64 {
	if trials == 0 || r.DataBytes == 0 {
		return 0
	}
	n := float64(trials)
	mean := r.TotalLUnv / n
	variance := (r.SumLUnvSq/n - mean*mean) / n
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / float64(r.DataBytes)
}

// ErrorRatio is the analogous ratio for direct data loss (L_error).
func (r SchemeResult) ErrorRatio(trials int) float64 {
	if trials == 0 || r.DataBytes == 0 {
		return 0
	}
	return r.TotalLErr / (float64(trials) * float64(r.DataBytes))
}

// Result is a full Monte Carlo outcome.
type Result struct {
	Trials   int
	TotalFIT float64
	Schemes  []SchemeResult
	// FaultTrials counts trials that saw at least one fault at all.
	FaultTrials int
	// Weight is the importance weight applied per conditional trial
	// (1 when Conditional is off).
	Weight float64
	// Telemetry is the per-point metric snapshot assembled by Merge.
	// Every value is an integer count folded in block order, so it is
	// bit-identical for any worker count, and it rides along when the
	// Result is JSON-cached on disk.
	Telemetry *telemetry.Snapshot `json:",omitempty"`
}

// poisson draws a Poisson(lambda) variate (Knuth's method; lambda is small
// in every use here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<20 {
			panic("faultsim: poisson runaway (lambda too large)")
		}
	}
}

// poissonAtLeast2 draws from Poisson(lambda) conditioned on the outcome
// being >= 2, by inverse-CDF over the truncated distribution.
func poissonAtLeast2(rng *rand.Rand, lambda float64) int {
	p0 := math.Exp(-lambda)
	p1 := p0 * lambda
	norm := 1 - p0 - p1
	if norm <= 0 {
		return 2
	}
	u := rng.Float64() * norm
	k := 2
	pk := p1 * lambda / 2
	for {
		if u < pk || k > 1000 {
			return k
		}
		u -= pk
		k++
		pk *= lambda / float64(k)
	}
}

// modeDist flattens a mode table into a sampleable (granularity, transient)
// distribution.
type modeDist struct {
	grans      []Granularity
	transients []bool
	cum        []float64 // cumulative rates
	total      float64
}

func newModeDist(modes []Mode) *modeDist {
	n := 0
	for _, m := range modes {
		if m.TransientFIT > 0 {
			n++
		}
		if m.PermanentFIT > 0 {
			n++
		}
	}
	d := &modeDist{
		grans:      make([]Granularity, 0, n),
		transients: make([]bool, 0, n),
		cum:        make([]float64, 0, n),
	}
	for _, m := range modes {
		for _, k := range []struct {
			fit float64
			tr  bool
		}{{m.TransientFIT, true}, {m.PermanentFIT, false}} {
			if k.fit <= 0 {
				continue
			}
			d.total += k.fit
			d.grans = append(d.grans, m.Gran)
			d.transients = append(d.transients, k.tr)
			d.cum = append(d.cum, d.total)
		}
	}
	return d
}

func (d *modeDist) sample(rng *rand.Rand) (Granularity, bool) {
	u := rng.Float64() * d.total
	for i, c := range d.cum {
		if u < c {
			return d.grans[i], d.transients[i]
		}
	}
	return d.grans[len(d.grans)-1], d.transients[len(d.transients)-1]
}

// sampleN places n fault events at uniform times with mode-proportional
// granularities, appending to buf (which may be nil).
func sampleN(rng *rand.Rand, cfg config.FaultSimConfig, dist *modeDist, n int, buf []Fault) []Fault {
	hours := cfg.Years * 365 * 24
	scrub := cfg.ScrubInterval.Hours()
	for i := 0; i < n; i++ {
		gran, transient := dist.sample(rng)
		t := rng.Float64() * hours
		end := hours + 1
		if transient && scrub > 0 {
			end = math.Min(t+scrub, hours+1)
		}
		buf = append(buf, sampleFault(rng, cfg.DIMM, gran, transient, t, end)...)
	}
	return buf
}

// SampleTrial draws one unconditioned trial's fault set over the configured
// lifetime.
func SampleTrial(rng *rand.Rand, cfg config.FaultSimConfig, modes []Mode) []Fault {
	return SampleTrialInto(rng, cfg, modes, nil)
}

// SampleTrialInto is SampleTrial with an explicit reusable buffer: the trial's
// faults are appended into buf[:0] (which may be nil), the same reuse
// discipline sampleN gives the block runner, so per-trial callers in a loop
// stop re-allocating the fault slice.
func SampleTrialInto(rng *rand.Rand, cfg config.FaultSimConfig, modes []Mode, buf []Fault) []Fault {
	dist := newModeDist(modes)
	hours := cfg.Years * 365 * 24
	lambda := dist.total * 1e-9 * hours * float64(cfg.DIMM.Chips)
	return sampleN(rng, cfg, dist, poisson(rng, lambda), buf[:0])
}

// blockSeed derives the RNG seed of one trial block from the master seed
// (splitmix64 finalizer, so adjacent blocks get decorrelated streams).
func blockSeed(seed int64, block int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(block+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// faultHistBounds are the upper bounds of the faults-per-trial histogram
// (plus one overflow bucket). Fixed at compile time so Partial stays a
// flat, mergeable value.
var faultHistBounds = [...]uint64{0, 1, 2, 3, 4, 6, 8, 16}

// faultHistBucket returns the bucket index for a fault count.
func faultHistBucket(n int) int {
	for i, b := range faultHistBounds[:] {
		if uint64(n) <= b {
			return i
		}
	}
	return len(faultHistBounds)
}

// Partial is the accumulated outcome of one trial block. Partials merge in
// block order, which is what keeps float sums bit-identical regardless of
// how blocks were scheduled across workers.
type Partial struct {
	Schemes     []SchemeResult
	FaultTrials int
	// Telemetry accumulators — integer counts only, merged in block
	// order like everything else.
	Trials     int    // trials executed in this block
	Faults     uint64 // total fault events drawn
	UETrials   int    // trials with >= 1 uncorrectable beat under the ECC model
	FaultsHist [len(faultHistBounds) + 1]uint64
}

// BlockRunner executes a Monte Carlo run as a sequence of independently
// schedulable, deterministic trial blocks. Run drives it with its own
// goroutines; the runner package drives many BlockRunners (one per sweep
// point) through a single shared worker pool.
type BlockRunner struct {
	opt     Options
	schemes []*Scheme
	dist    *modeDist
	lambda  float64
	weight  float64
	trials  int
	block   int
}

// NewBlockRunner validates the options and precomputes the fault
// distribution shared by all blocks.
func NewBlockRunner(opt Options, schemes []*Scheme) (*BlockRunner, error) {
	trials := opt.Trials
	if trials == 0 {
		trials = opt.Config.Trials
	}
	if trials <= 0 {
		return nil, fmt.Errorf("faultsim: trials must be positive")
	}
	if err := opt.Config.DIMM.Validate(); err != nil {
		return nil, err
	}
	block := opt.BlockSize
	if block <= 0 {
		block = DefaultBlockSize
	}
	dist := newModeDist(ScaledModes(HopperModes(), opt.TotalFIT))
	hours := opt.Config.Years * 365 * 24
	lambda := dist.total * 1e-9 * hours * float64(opt.Config.DIMM.Chips)
	weight := 1.0
	if opt.Conditional {
		// P(N >= 2): the probability mass the conditional trials
		// represent.
		weight = 1 - math.Exp(-lambda)*(1+lambda)
	}
	return &BlockRunner{
		opt: opt, schemes: schemes, dist: dist,
		lambda: lambda, weight: weight, trials: trials, block: block,
	}, nil
}

// Trials returns the effective trial count.
func (br *BlockRunner) Trials() int { return br.trials }

// NumBlocks returns the number of trial blocks.
func (br *BlockRunner) NumBlocks() int { return (br.trials + br.block - 1) / br.block }

// BlockTrials returns the number of trials in block b (the last block may
// be short).
func (br *BlockRunner) BlockTrials(b int) int {
	n := br.block
	if rem := br.trials - b*br.block; rem < n {
		n = rem
	}
	return n
}

// RunBlock executes block b from its own RNG stream and returns its
// partial sums. It is safe to call concurrently for distinct blocks, and
// the result depends only on (Options, schemes, b).
func (br *BlockRunner) RunBlock(b int) Partial {
	rng := rand.New(rand.NewSource(blockSeed(br.opt.Seed, b)))
	p := Partial{Schemes: make([]SchemeResult, len(br.schemes))}
	minFaults := br.opt.ECC.minFaultsFor()
	// Scratch buffers live for the whole block: the per-trial fault and
	// rectangle sets reuse them instead of re-allocating ~2x per trial.
	var faults []Fault
	var rects []Rect
	n := br.BlockTrials(b)
	p.Trials = n
	for t := 0; t < n; t++ {
		var k int
		if br.opt.Conditional {
			k = poissonAtLeast2(rng, br.lambda)
		} else {
			k = poisson(rng, br.lambda)
		}
		faults = sampleN(rng, br.opt.Config, br.dist, k, faults[:0])
		p.Faults += uint64(len(faults))
		p.FaultsHist[faultHistBucket(len(faults))]++
		if len(faults) > 0 {
			p.FaultTrials++
		}
		if len(faults) < minFaults {
			continue // within the code's correction capability
		}
		rects = br.opt.ECC.appendRects(rects[:0], br.opt.Config.DIMM, faults)
		if len(rects) == 0 {
			continue
		}
		p.UETrials++
		for i, s := range br.schemes {
			lErr, lUnv := s.Loss(br.opt.Config.DIMM, rects)
			sr := &p.Schemes[i]
			if lErr > 0 || lUnv > 0 {
				sr.TrialsWithUE++
			}
			if lUnv > 0 {
				sr.TrialsWithUnv++
			}
			wUnv := br.weight * float64(lUnv)
			sr.TotalLErr += br.weight * float64(lErr)
			sr.TotalLUnv += wUnv
			sr.SumLUnvSq += wUnv * wUnv
		}
	}
	return p
}

// Merge folds block partials (indexed by block) into a Result. The fold
// is sequential in block order, so the float sums do not depend on the
// schedule that produced the partials.
func (br *BlockRunner) Merge(parts []Partial) *Result {
	res := &Result{Trials: br.trials, TotalFIT: br.opt.TotalFIT, Weight: br.weight}
	res.Schemes = make([]SchemeResult, len(br.schemes))
	for i, s := range br.schemes {
		res.Schemes[i] = SchemeResult{Name: s.Name, DataBytes: s.Layout.DataBytes}
	}
	var trials, ueTrials int
	var faultsDrawn uint64
	var hist [len(faultHistBounds) + 1]uint64
	for _, p := range parts {
		res.FaultTrials += p.FaultTrials
		trials += p.Trials
		ueTrials += p.UETrials
		faultsDrawn += p.Faults
		for i := range hist {
			hist[i] += p.FaultsHist[i]
		}
		for i := range p.Schemes {
			res.Schemes[i].TrialsWithUE += p.Schemes[i].TrialsWithUE
			res.Schemes[i].TrialsWithUnv += p.Schemes[i].TrialsWithUnv
			res.Schemes[i].TotalLErr += p.Schemes[i].TotalLErr
			res.Schemes[i].TotalLUnv += p.Schemes[i].TotalLUnv
			res.Schemes[i].SumLUnvSq += p.Schemes[i].SumLUnvSq
		}
	}
	res.Telemetry = br.telemetrySnapshot(res, trials, ueTrials, faultsDrawn, &hist)
	return res
}

// telemetrySnapshot assembles the per-point metric snapshot from the
// block-order fold. Weighted float sums stay out of it deliberately: the
// snapshot holds only integer counts, so its JSON form is byte-identical
// across runs and worker counts.
func (br *BlockRunner) telemetrySnapshot(res *Result, trials, ueTrials int, faults uint64, hist *[len(faultHistBounds) + 1]uint64) *telemetry.Snapshot {
	s := &telemetry.Snapshot{
		Counters: map[string]uint64{
			"faultsim_trials_total":       uint64(trials),
			"faultsim_fault_trials_total": uint64(res.FaultTrials),
			"faultsim_ue_trials_total":    uint64(ueTrials),
			"faultsim_faults_total":       faults,
		},
		Histograms: map[string]telemetry.HistogramSnapshot{},
	}
	var count, sum uint64
	for i, c := range hist {
		count += c
		if i < len(faultHistBounds) {
			sum += c * faultHistBounds[i]
		}
	}
	s.Histograms["faultsim_faults_per_trial"] = telemetry.HistogramSnapshot{
		Bounds: append([]uint64(nil), faultHistBounds[:]...),
		Counts: append([]uint64(nil), hist[:]...),
		Count:  count,
		Sum:    sum,
	}
	for i := range res.Schemes {
		sr := &res.Schemes[i]
		s.Counters["faultsim_"+promSafe(sr.Name)+"_trials_with_ue_total"] = uint64(sr.TrialsWithUE)
		s.Counters["faultsim_"+promSafe(sr.Name)+"_trials_with_unv_total"] = uint64(sr.TrialsWithUnv)
	}
	return s
}

// promSafe lowercases and replaces non-identifier runes so scheme names
// ("Soteria-SRC") become metric-name safe ("soteria_src").
func promSafe(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Run executes the Monte Carlo simulation for every scheme over a shared
// fault stream (schemes see identical fault histories, like the paper's
// common FaultSim traces). Workers pull trial blocks from a shared
// counter; the outcome is bit-identical for any Workers value.
func Run(opt Options, schemes []*Scheme) (*Result, error) {
	br, err := NewBlockRunner(opt, schemes)
	if err != nil {
		return nil, err
	}
	blocks := br.NumBlocks()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}

	parts := make([]Partial, blocks)
	var next, done atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1))
				if b >= blocks {
					return
				}
				parts[b] = br.RunBlock(b)
				if opt.Progress != nil {
					opt.Progress(int(done.Add(int64(br.BlockTrials(b)))), br.trials)
				}
			}
		}()
	}
	wg.Wait()
	return br.Merge(parts), nil
}
