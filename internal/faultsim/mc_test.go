package faultsim

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"soteria/internal/config"
	"soteria/internal/core"
)

func mcSchemes(t testing.TB) []*Scheme {
	t.Helper()
	d := config.Table4().DIMM
	schemes := []*Scheme{NonSecureScheme(d)}
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := BuildScheme(d, pol, 8192)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	return schemes
}

// The tentpole guarantee: the same seed produces bit-identical Results at
// Workers = 1, 4 and 16, because trials are scheduled in fixed blocks with
// per-block RNG streams and partials merge in block order.
func TestRunWorkerCountInvariance(t *testing.T) {
	schemes := mcSchemes(t)
	base := Options{
		Config: config.Table4(), TotalFIT: 80, Trials: 6_000, Seed: 3,
		Conditional: true, BlockSize: 512,
	}
	var want *Result
	for _, workers := range []int{1, 4, 16} {
		opt := base
		opt.Workers = workers
		got, err := Run(opt, schemes)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		// DeepEqual compares the float sums bit-for-bit — scheduling must
		// not reorder a single addition.
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
	if want.Schemes[1].TotalLUnv == 0 {
		t.Fatal("degenerate run: baseline saw no unverifiable loss at FIT 80")
	}
}

// Block seeds must differ across blocks and depend on the master seed.
func TestBlockSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for b := 0; b < 1000; b++ {
		s := blockSeed(42, b)
		if seen[s] {
			t.Fatalf("block seed collision at block %d", b)
		}
		seen[s] = true
	}
	if blockSeed(1, 0) == blockSeed(2, 0) {
		t.Fatal("block seed ignores the master seed")
	}
}

// BlockRunner bookkeeping: trials partition exactly into blocks.
func TestBlockRunnerPartition(t *testing.T) {
	br, err := NewBlockRunner(Options{
		Config: config.Table4(), TotalFIT: 10, Trials: 1000, BlockSize: 300,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4", br.NumBlocks())
	}
	total := 0
	for b := 0; b < br.NumBlocks(); b++ {
		n := br.BlockTrials(b)
		if n <= 0 || n > 300 {
			t.Fatalf("block %d has %d trials", b, n)
		}
		total += n
	}
	if total != 1000 {
		t.Fatalf("blocks cover %d trials, want 1000", total)
	}
}

func TestRunReportsProgress(t *testing.T) {
	var mu sync.Mutex
	var last, calls int
	_, err := Run(Options{
		Config: config.Table4(), TotalFIT: 80, Trials: 2_000, Seed: 1,
		Conditional: true, BlockSize: 256, Workers: 4,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if total != 2_000 {
				t.Errorf("progress total = %d, want 2000", total)
			}
			if done > last {
				last = done
			}
		},
	}, mcSchemes(t))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 8 { // ceil(2000/256) blocks
		t.Fatalf("progress calls = %d, want 8", calls)
	}
	if last != 2_000 {
		t.Fatalf("final progress = %d, want 2000", last)
	}
}

// Statistical cross-check of the importance-sampling path: conditioned
// sampling (weighted by P(N >= 2)) must agree with plain sampling on the
// baseline scheme's UDR at FIT 80 within 3 combined standard errors.
func TestConditionalMatchesRawUDR(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical cross-check is slow")
	}
	cfg := config.Table4()
	d := cfg.DIMM
	base, err := BuildScheme(d, core.Baseline(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	schemes := []*Scheme{base}

	cond, err := Run(Options{
		Config: cfg, TotalFIT: 80, Trials: 20_000, Seed: 17, Conditional: true,
	}, schemes)
	if err != nil {
		t.Fatal(err)
	}
	// Plain sampling wastes ~99.8% of trials on fault-free lifetimes, so
	// it needs far more trials for far less precision — which is exactly
	// why the Conditional path exists. Fault-free trials are nearly free,
	// so the raw run stays fast despite the count.
	raw, err := Run(Options{
		Config: cfg, TotalFIT: 80, Trials: 4_000_000, Seed: 23,
	}, schemes)
	if err != nil {
		t.Fatal(err)
	}

	udrC, sigC := cond.Schemes[0].UDR(cond.Trials), cond.Schemes[0].UDRSigma(cond.Trials)
	udrR, sigR := raw.Schemes[0].UDR(raw.Trials), raw.Schemes[0].UDRSigma(raw.Trials)
	if udrC <= 0 {
		t.Fatal("conditional run saw no unverifiable loss")
	}
	if raw.Schemes[0].TrialsWithUnv == 0 {
		t.Fatal("raw run saw no unverifiable loss; increase trials")
	}
	sigma := math.Sqrt(sigC*sigC + sigR*sigR)
	if diff := math.Abs(udrC - udrR); diff > 3*sigma {
		t.Fatalf("importance sampling disagrees with plain sampling: |%.3g - %.3g| = %.3g > 3σ = %.3g",
			udrC, udrR, diff, 3*sigma)
	}
}

// UDRSigma sanity: a run with loss events reports a positive, finite
// standard error that shrinks roughly like 1/sqrt(trials).
func TestUDRSigmaScaling(t *testing.T) {
	cfg := config.Table4()
	base, err := BuildScheme(cfg.DIMM, core.Baseline(), 8192)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(Options{Config: cfg, TotalFIT: 80, Trials: 4_000, Seed: 5, Conditional: true}, []*Scheme{base})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Options{Config: cfg, TotalFIT: 80, Trials: 16_000, Seed: 5, Conditional: true}, []*Scheme{base})
	if err != nil {
		t.Fatal(err)
	}
	sSmall := small.Schemes[0].UDRSigma(small.Trials)
	sBig := big.Schemes[0].UDRSigma(big.Trials)
	if sSmall <= 0 || sBig <= 0 || math.IsInf(sSmall, 0) || math.IsNaN(sSmall) {
		t.Fatalf("degenerate sigmas %g, %g", sSmall, sBig)
	}
	// 4x the trials should cut sigma roughly in half; allow slack for the
	// heavy-tailed loss distribution.
	if sBig > sSmall {
		t.Fatalf("sigma grew with trials: %g -> %g", sSmall, sBig)
	}
}
