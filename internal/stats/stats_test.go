package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("a", 4)
	c.Add("b", 10)
	if c.Get("a") != 5 || c.Get("b") != 10 || c.Get("missing") != 0 {
		t.Fatalf("counter values wrong: %d %d", c.Get("a"), c.Get("b"))
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	if r := c.Ratio("a", "b"); r != 0.5 {
		t.Fatalf("ratio %v", r)
	}
	if c.Ratio("a", "zero") != 0 {
		t.Fatal("zero denominator must give 0")
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a") {
		t.Fatal("WriteTo missing counter")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(99) // clamped to last bucket
	h.Observe(-3) // clamped to first
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 1 || h.Count(0) != 2 {
		t.Fatal("bucket counts wrong")
	}
	if h.Fraction(1) != 0.4 {
		t.Fatalf("fraction %v", h.Fraction(1))
	}
	if h.Count(42) != 0 {
		t.Fatal("out-of-range Count should be 0")
	}
	if NewHistogram(2).Fraction(0) != 0 {
		t.Fatal("empty histogram fraction must be 0")
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean %v", g)
	}
	// Non-positive values are ignored, not zeroing.
	if g := GeoMean([]float64{0, 4, 9, -1}); math.Abs(g-6) > 1e-9 {
		t.Fatalf("geomean with zeros %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	if Mean([]float64{1, 2, 3}) != 2 || Mean(nil) != 0 {
		t.Fatal("mean wrong")
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("x", 1.5)
	tab.AddRow("y", uint64(7))
	if tab.NumRows() != 2 {
		t.Fatal("row count")
	}
	var md bytes.Buffer
	if err := tab.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	out := md.String()
	for _, want := range []string{"### demo", "| name", "| x", "1.500", "| y", "| 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q in:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "name,value" {
		t.Fatalf("csv: %v", lines)
	}
}

func TestTableSort(t *testing.T) {
	tab := NewTable("", "k")
	tab.AddRow("b")
	tab.AddRow("a")
	tab.SortByColumn(0)
	var csv bytes.Buffer
	_ = tab.WriteCSV(&csv)
	if !strings.HasPrefix(strings.Split(csv.String(), "\n")[1], "a") {
		t.Fatal("sort failed")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.500",
		0.25:    "0.2500",
		1e-9:    "1.000e-09",
		3.7e4:   "37000.000",
		2.66e-8: "2.660e-08",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		64:         "64B",
		4096:       "4.00KiB",
		16 << 30:   "16.00GiB",
		8 << 40:    "8.00TiB",
		1.5 * 1024: "1.50KiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}
