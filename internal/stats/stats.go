// Package stats provides the lightweight metric-collection and table
// rendering utilities used by every experiment harness in the repository.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Counters is a named bag of monotonically increasing uint64 counters.
type Counters struct {
	m     map[string]uint64
	order []string
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Add increments the named counter by n, creating it at zero if needed.
func (c *Counters) Add(name string, n uint64) {
	if _, ok := c.m[name]; !ok {
		c.order = append(c.order, name)
	}
	c.m[name] += n
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of the named counter (zero if absent).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Ratio returns numerator/denominator as a float, or zero when the
// denominator counter is zero.
func (c *Counters) Ratio(num, den string) float64 {
	d := c.m[den]
	if d == 0 {
		return 0
	}
	return float64(c.m[num]) / float64(d)
}

// WriteTo dumps the counters one per line in insertion order.
func (c *Counters) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, name := range c.order {
		n, err := fmt.Fprintf(w, "%-40s %12d\n", name, c.m[name])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Histogram is a fixed-bucket histogram over integer keys (for example
// Merkle-tree levels). Keys outside the preallocated range are clamped.
type Histogram struct {
	counts []uint64
	total  uint64
}

// NewHistogram returns a histogram with buckets [0, n).
func NewHistogram(n int) *Histogram {
	return &Histogram{counts: make([]uint64, n)}
}

// Observe adds one sample at key k.
func (h *Histogram) Observe(k int) {
	if k < 0 {
		k = 0
	}
	if k >= len(h.counts) {
		k = len(h.counts) - 1
	}
	h.counts[k]++
	h.total++
}

// Count returns the number of samples in bucket k.
func (h *Histogram) Count(k int) uint64 {
	if k < 0 || k >= len(h.counts) {
		return 0
	}
	return h.counts[k]
}

// Total returns the total number of samples observed.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the share of samples in bucket k (0 when empty).
func (h *Histogram) Fraction(k int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(k)) / float64(h.total)
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// SetCounts replaces the histogram contents (checkpoint restore). The
// bucket count must match the histogram's layout.
func (h *Histogram) SetCounts(counts []uint64) error {
	if len(counts) != len(h.counts) {
		return fmt.Errorf("stats: histogram has %d buckets, restore has %d", len(h.counts), len(counts))
	}
	h.total = 0
	for i, c := range counts {
		h.counts[i] = c
		h.total += c
	}
	return nil
}

// GeoMean returns the geometric mean of the inputs, ignoring non-positive
// values (which would otherwise collapse the product to zero). It returns
// zero when no positive values exist.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table accumulates rows and renders them as GitHub-flavoured markdown or
// CSV; every experiment binary reports through it so figures and tables have
// a uniform, diffable format.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// SortByColumn sorts rows lexicographically by the given column index.
func (t *Table) SortByColumn(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// Row returns a copy of data row i, as rendered.
func (t *Table) Row(i int) []string {
	out := make([]string, len(t.rows[i]))
	copy(out, t.rows[i])
	return out
}

// WriteMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "\n### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, n int) string { return s + strings.Repeat(" ", n-len(s)) }
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = pad(h, widths[i])
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	for i := range cells {
		cells[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		for i := range cells {
			if i < len(row) {
				cells[i] = pad(row[i], widths[i])
			} else {
				cells[i] = pad("", widths[i])
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting: experiment values never
// contain commas).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.headers, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a float compactly: scientific notation for very small
// or very large magnitudes, fixed point otherwise.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) < 1e-3 || math.Abs(v) >= 1e7:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB"}
	i := 0
	for math.Abs(b) >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	if i == 0 {
		return fmt.Sprintf("%.0f%s", b, units[i])
	}
	return fmt.Sprintf("%.2f%s", b, units[i])
}
