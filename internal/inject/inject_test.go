package inject

import (
	"reflect"
	"strings"
	"testing"
)

// recorder logs every event it sees, tagged with its name, into a shared
// trace so fan-out ordering is observable.
type recorder struct {
	name  string
	trace *[]string
}

func (r recorder) Event(ev Event) {
	*r.trace = append(*r.trace, r.name+":"+ev.Kind.String())
}

func TestHooksFanOutInOrder(t *testing.T) {
	var trace []string
	h := Hooks{recorder{"a", &trace}, nil, recorder{"b", &trace}}
	h.Event(Event{Kind: DeviceWrite, Addr: 0x40})
	h.Event(Event{Kind: Note, Label: "x"})
	want := []string{"a:write", "b:write", "a:note", "b:note"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestJoinFastPaths(t *testing.T) {
	if h := Join(); h != nil {
		t.Fatalf("Join() = %v, want nil", h)
	}
	if h := Join(nil, nil); h != nil {
		t.Fatalf("Join(nil, nil) = %v, want nil", h)
	}
	var trace []string
	single := recorder{"only", &trace}
	if h := Join(nil, single, nil); h != Hook(single) {
		// A single live hook must come back unwrapped — the device write
		// path relies on `hook == nil` checks and minimal indirection.
		t.Fatalf("Join with one live hook wrapped it: %T", h)
	}
	multi := Join(recorder{"a", &trace}, nil, recorder{"b", &trace})
	if _, ok := multi.(Hooks); !ok {
		t.Fatalf("Join with two live hooks returned %T, want Hooks", multi)
	}
	multi.Event(Event{Kind: SealBegin})
	if want := []string{"a:seal-begin", "b:seal-begin"}; !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// crasher panics with PowerLoss on the first event it sees.
type crasher struct{ boundary int }

func (c crasher) Event(Event) { panic(PowerLoss{Boundary: c.boundary}) }

func TestHooksStopAtPowerLoss(t *testing.T) {
	var trace []string
	h := Hooks{recorder{"a", &trace}, crasher{7}, recorder{"b", &trace}}
	defer func() {
		p, ok := recover().(PowerLoss)
		if !ok || p.Boundary != 7 {
			t.Fatalf("recover() = %v, want PowerLoss{7}", p)
		}
		// Hook b must not have observed the write: power was already cut.
		if want := []string{"a:write"}; !reflect.DeepEqual(trace, want) {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}()
	h.Event(Event{Kind: DeviceWrite})
}

func TestSealTrackerBoundaries(t *testing.T) {
	var s SealTracker
	steps := []struct {
		ev       Event
		boundary bool
		depth    int
	}{
		{Event{Kind: DeviceWrite}, true, 0},            // plain write
		{Event{Kind: GroupBegin}, false, 0},            // groups are informational
		{Event{Kind: DeviceWrite}, true, 0},            // writes in groups still count
		{Event{Kind: GroupEnd}, false, 0},              //
		{Event{Kind: SealBegin, Label: "tx"}, true, 1}, // outermost seal = one boundary
		{Event{Kind: DeviceWrite}, false, 1},           // sealed writes are atomic
		{Event{Kind: SealBegin}, false, 2},             // nested seal rides inside
		{Event{Kind: DeviceWrite}, false, 2},           //
		{Event{Kind: SealEnd}, false, 1},               //
		{Event{Kind: DeviceWrite}, false, 1},           // still inside the outer seal
		{Event{Kind: SealEnd}, false, 0},               //
		{Event{Kind: DeviceWrite}, true, 0},            // back outside
		{Event{Kind: Note, Label: "m"}, false, 0},      // notes never count
	}
	for i, st := range steps {
		if got := s.Observe(st.ev); got != st.boundary {
			t.Fatalf("step %d (%v): boundary = %v, want %v", i, st.ev.Kind, got, st.boundary)
		}
		if s.Depth() != st.depth {
			t.Fatalf("step %d (%v): depth = %d, want %d", i, st.ev.Kind, s.Depth(), st.depth)
		}
	}
	if s.Sealed() {
		t.Fatal("tracker still sealed after balanced stream")
	}
}

func TestSealTrackerClampsUnmatchedEnds(t *testing.T) {
	var s SealTracker
	s.Observe(Event{Kind: SealEnd})
	s.Observe(Event{Kind: SealEnd})
	if s.Depth() != 0 {
		t.Fatalf("depth = %d after unmatched SealEnds, want 0", s.Depth())
	}
	// The stream must still work normally afterwards.
	if !s.Observe(Event{Kind: DeviceWrite}) {
		t.Fatal("write after clamped SealEnds is not a boundary")
	}
}

// The IsBoundary/Advance split is what keeps a crashing hook balanced: a
// PowerLoss thrown while acting on an outermost SealBegin must leave the
// tracker at depth zero, because the seal never opened.
func TestSealTrackerSurvivesPowerLossAtSealBegin(t *testing.T) {
	var s SealTracker
	ev := Event{Kind: SealBegin, Label: "commit"}
	func() {
		defer func() { recover() }()
		if s.IsBoundary(ev) {
			panic(PowerLoss{Boundary: 3})
		}
		s.Advance(ev)
	}()
	if s.Depth() != 0 {
		t.Fatalf("depth = %d after PowerLoss at SealBegin, want 0", s.Depth())
	}
	// Reset is still the explicit recovery path for arbitrary unwinds.
	s.Advance(Event{Kind: SealBegin})
	s.Reset()
	if s.Sealed() {
		t.Fatal("Reset did not clear the seal depth")
	}
}

func TestPowerLossError(t *testing.T) {
	msg := PowerLoss{Boundary: 12}.Error()
	if !strings.Contains(msg, "power loss") || !strings.Contains(msg, "12") {
		t.Fatalf("unhelpful PowerLoss message: %q", msg)
	}
}
