// Package inject defines the chaos-injection hook threaded through the
// storage stack (nvm.Device, wpq.Queue, memctrl.Controller). A hook
// observes every persistent write boundary plus the structural events
// around it (atomic clone groups, crash-atomic sealed sections) and may
// react by mutating device state (fault injection) or by aborting the
// in-flight operation with a simulated power loss.
//
// The event stream defines the write-boundary numbering used by the chaos
// harness: a scenario that "crashes at boundary k" panics with PowerLoss
// from the hook before the k-th boundary's write is applied, so exactly
// the writes before boundary k are durable. Which events count as
// boundaries is the hook's policy; the conventions used by internal/chaos
// are:
//
//   - every DeviceWrite outside a sealed section is one boundary;
//   - SealBegin is one boundary (the whole sealed transaction either
//     happens after the boundary or not at all);
//   - DeviceWrites inside a sealed section are not boundaries — sealed
//     sections model transactions the memory controller commits
//     atomically from the ADR persistence domain (the <=3-write data
//     commit of the paper, shadow-table entry+BMT updates, page
//     re-encryption);
//   - GroupBegin/GroupEnd are informational: writes inside an atomic
//     clone group remain individual boundaries, because Soteria's
//     recovery is explicitly designed to tolerate torn clone sets.
package inject

import "fmt"

// Kind classifies a hook event.
type Kind int

// Event kinds.
const (
	// DeviceWrite fires immediately before a line write is applied to
	// the NVM array. Addr is the line address.
	DeviceWrite Kind = iota
	// GroupBegin / GroupEnd bracket an atomic clone-set push through the
	// WPQ. The writes in between are individually tearable.
	GroupBegin
	GroupEnd
	// SealBegin / SealEnd bracket a crash-atomic controller transaction;
	// device writes in between must not be torn.
	SealBegin
	SealEnd
	// Note is a free-form marker emitted by the controller (e.g.
	// "recover-begin") so scenarios can target specific phases.
	Note
)

func (k Kind) String() string {
	switch k {
	case DeviceWrite:
		return "write"
	case GroupBegin:
		return "group-begin"
	case GroupEnd:
		return "group-end"
	case SealBegin:
		return "seal-begin"
	case SealEnd:
		return "seal-end"
	case Note:
		return "note"
	default:
		return "?"
	}
}

// Event is one observation delivered to a Hook.
type Event struct {
	Kind Kind
	// Addr is the target line address for DeviceWrite events.
	Addr uint64
	// Label names the transaction or marker for SealBegin/SealEnd/Note
	// and GroupBegin/GroupEnd events.
	Label string
}

// Hook receives the event stream. Implementations may panic with
// PowerLoss to simulate a crash at the current boundary; they must not
// panic with anything else.
type Hook interface {
	Event(Event)
}

// Hooks fans one event stream out to several hooks, in slice order. A nil
// entry is skipped, so callers can compose optional observers without
// filtering first. If a hook panics with PowerLoss, later hooks do not see
// the event — power is already gone.
type Hooks []Hook

// Event implements Hook.
func (hs Hooks) Event(ev Event) {
	for _, h := range hs {
		if h != nil {
			h.Event(ev)
		}
	}
}

// Join combines hooks into one. It returns nil when every argument is nil
// (preserving the stack's nil-hook fast path) and the hook itself when
// exactly one is non-nil (no fan-out indirection on the write path).
func Join(hooks ...Hook) Hook {
	var live Hooks
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// SealTracker maintains the seal-nesting depth for a hook that follows the
// boundary conventions documented above. IsBoundary and Advance are split
// so a hook can act on a boundary *before* recording the event: if acting
// panics with PowerLoss (the outermost SealBegin case), the depth has not
// been bumped yet and the unwind leaves the tracker balanced.
type SealTracker struct {
	depth int
}

// IsBoundary reports whether ev is a write boundary under the package
// conventions: a DeviceWrite outside any sealed section, or the SealBegin
// that opens the outermost sealed section. It does not change state.
func (s *SealTracker) IsBoundary(ev Event) bool {
	switch ev.Kind {
	case DeviceWrite:
		return s.depth == 0
	case SealBegin:
		return s.depth == 0
	}
	return false
}

// Advance records ev's effect on the nesting depth. Unmatched SealEnds
// clamp at zero rather than going negative, so a stream that resumes after
// a PowerLoss unwind cannot corrupt the count.
func (s *SealTracker) Advance(ev Event) {
	switch ev.Kind {
	case SealBegin:
		s.depth++
	case SealEnd:
		if s.depth > 0 {
			s.depth--
		}
	}
}

// Observe is IsBoundary followed by Advance, for hooks whose boundary
// action cannot panic.
func (s *SealTracker) Observe(ev Event) bool {
	b := s.IsBoundary(ev)
	s.Advance(ev)
	return b
}

// Depth returns the current seal-nesting depth.
func (s *SealTracker) Depth() int { return s.depth }

// Sealed reports whether the stream is inside a sealed section.
func (s *SealTracker) Sealed() bool { return s.depth > 0 }

// Reset clears any depth left dangling by a PowerLoss unwind.
func (s *SealTracker) Reset() { s.depth = 0 }

// PowerLoss is the panic value a hook throws to cut power at a write
// boundary. The layer that started the operation (the chaos harness)
// recovers it; nothing between the hook and that layer runs, which is
// exactly the semantics of losing power before the write is applied.
type PowerLoss struct {
	// Boundary is the global write-boundary index at which power was
	// cut, for repro output.
	Boundary int
}

func (p PowerLoss) Error() string {
	return fmt.Sprintf("inject: simulated power loss at write boundary %d", p.Boundary)
}
