package ctrenc

import (
	"testing"
	"testing/quick"
)

func eng(t testing.TB) *Engine {
	t.Helper()
	return MustNewEngine([]byte("test-root-key"))
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := eng(t)
	f := func(pt [BlockSize]byte, addr, ctr uint64) bool {
		ct := e.Encrypt(addr, ctr, &pt)
		back := e.Decrypt(addr, ctr, &ct)
		return back == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextDependsOnAddressAndCounter(t *testing.T) {
	e := eng(t)
	var pt [BlockSize]byte
	a := e.Encrypt(0x1000, 5, &pt)
	b := e.Encrypt(0x1040, 5, &pt)
	c := e.Encrypt(0x1000, 6, &pt)
	if a == b {
		t.Fatal("same pad for different addresses (spatial OTP reuse)")
	}
	if a == c {
		t.Fatal("same pad for different counters (temporal OTP reuse)")
	}
}

func TestWrongCounterFailsToDecrypt(t *testing.T) {
	e := eng(t)
	pt := [BlockSize]byte{1, 2, 3}
	ct := e.Encrypt(64, 10, &pt)
	got := e.Decrypt(64, 11, &ct)
	if got == pt {
		t.Fatal("decrypted correctly with wrong counter")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	e1 := MustNewEngine([]byte("k1"))
	e2 := MustNewEngine([]byte("k2"))
	var pt [BlockSize]byte
	if e1.Encrypt(0, 0, &pt) == e2.Encrypt(0, 0, &pt) {
		t.Fatal("two keys produced identical pads")
	}
	if e1.DataMAC(0, 0, &pt) == e2.DataMAC(0, 0, &pt) {
		t.Fatal("two keys produced identical MACs")
	}
}

func TestMACDomainSeparation(t *testing.T) {
	e := eng(t)
	body := []byte("same bytes")
	m1 := e.MAC(DomainData, 1, 2, body)
	m2 := e.MAC(DomainCounter, 1, 2, body)
	m3 := e.MAC(DomainNode, 1, 2, body)
	if m1 == m2 || m2 == m3 || m1 == m3 {
		t.Fatal("MAC domains collide")
	}
	if e.MAC(DomainData, 1, 2, body) != m1 {
		t.Fatal("MAC not deterministic")
	}
	if e.MAC(DomainData, 2, 2, body) == m1 {
		t.Fatal("MAC ignores tweak1")
	}
	if e.MAC(DomainData, 1, 3, body) == m1 {
		t.Fatal("MAC ignores tweak2")
	}
}

func TestDataMACDetectsTamper(t *testing.T) {
	e := eng(t)
	pt := [BlockSize]byte{9, 9, 9}
	ct := e.Encrypt(128, 3, &pt)
	mac := e.DataMAC(128, 3, &ct)
	// Flip one ciphertext bit.
	ct[10] ^= 1
	if e.DataMAC(128, 3, &ct) == mac {
		t.Fatal("MAC unchanged after ciphertext tamper")
	}
	ct[10] ^= 1
	// Replay at a different address.
	if e.DataMAC(192, 3, &ct) == mac {
		t.Fatal("MAC unchanged across addresses (replay)")
	}
	// Replay with an older counter.
	if e.DataMAC(128, 2, &ct) == mac {
		t.Fatal("MAC unchanged across counters (counter replay)")
	}
}

func TestMinorPackRoundTrip(t *testing.T) {
	f := func(raw [CountersPerBlock]uint8) bool {
		var c CounterBlock
		for i, v := range raw {
			c.Minors[i] = v & MinorMax
		}
		c.Major = 0xDEADBEEF
		c.MAC = 0x1234567890ABCDEF
		line := c.Serialize()
		back := DeserializeCounterBlock(&line)
		return back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterIncrementAndOverflow(t *testing.T) {
	var c CounterBlock
	for i := 0; i < MinorMax; i++ {
		if c.Increment(7) {
			t.Fatalf("premature overflow at %d", i)
		}
	}
	if c.Minors[7] != MinorMax {
		t.Fatalf("minor = %d, want %d", c.Minors[7], MinorMax)
	}
	if !c.Increment(7) {
		t.Fatal("overflow not reported")
	}
	old := c.Counter(7)
	c.BumpMajor()
	if c.Major != 1 || c.Minors[7] != 0 {
		t.Fatal("BumpMajor did not reset")
	}
	if c.Counter(7) <= old {
		t.Fatal("counter went backwards after major bump")
	}
}

// Counters must be strictly monotonic across increments and major bumps —
// the anti-replay property the whole scheme rests on.
func TestCounterMonotonic(t *testing.T) {
	var c CounterBlock
	prev := c.Counter(0)
	for step := 0; step < 200; step++ {
		if c.Increment(0) {
			c.BumpMajor()
		}
		cur := c.Counter(0)
		if cur <= prev {
			t.Fatalf("counter not monotonic at step %d: %d <= %d", step, cur, prev)
		}
		prev = cur
	}
}

func TestContentMACBindsIndexAndParent(t *testing.T) {
	e := eng(t)
	var c CounterBlock
	c.Major = 7
	c.Minors[3] = 2
	m := c.ContentMAC(e, 10, 100)
	if c.ContentMAC(e, 11, 100) == m {
		t.Fatal("MAC ignores block index")
	}
	if c.ContentMAC(e, 10, 101) == m {
		t.Fatal("MAC ignores parent counter (node replay possible)")
	}
	// The stored MAC field must not feed back into the computation.
	c.MAC = 0xFFFF
	if c.ContentMAC(e, 10, 100) != m {
		t.Fatal("stored MAC field included in content MAC")
	}
}

func TestCounterValueLayout(t *testing.T) {
	var c CounterBlock
	c.Major = 2
	c.Minors[0] = 3
	if got, want := c.Counter(0), uint64(2<<MinorBits|3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	e := eng(b)
	var pt [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		e.Encrypt(uint64(i)*64, uint64(i), &pt)
	}
}

func BenchmarkDataMAC(b *testing.B) {
	e := eng(b)
	var ct [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		e.DataMAC(uint64(i)*64, 1, &ct)
	}
}

// TestDeriveSubkeySeparation: subkeys are deterministic, and distinct
// across label, id and epoch — the properties the tenant layer's
// per-(tenant, epoch) key domains lean on.
func TestDeriveSubkeySeparation(t *testing.T) {
	e := MustNewEngine([]byte("subkey-test-root"))
	base := e.DeriveSubkey("tenant-data", 1, 1)
	if base != e.DeriveSubkey("tenant-data", 1, 1) {
		t.Fatal("subkey derivation is not deterministic")
	}
	others := [][32]byte{
		e.DeriveSubkey("tenant-auth", 1, 1),
		e.DeriveSubkey("tenant-data", 2, 1),
		e.DeriveSubkey("tenant-data", 1, 2),
		MustNewEngine([]byte("other-root")).DeriveSubkey("tenant-data", 1, 1),
	}
	for i, o := range others {
		if o == base {
			t.Fatalf("subkey %d collides with the base derivation", i)
		}
	}
	// Subkeys must be usable as engine roots.
	sub := e.DeriveSubkey("tenant-data", 1, 1)
	if _, err := NewEngine(sub[:]); err != nil {
		t.Fatal(err)
	}
}
