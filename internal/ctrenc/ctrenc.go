// Package ctrenc implements the confidentiality layer of the secure memory
// controller: AES-128 counter-mode encryption with VAULT-style 64-ary split
// counters, plus the keyed 64-bit MACs used throughout the integrity
// machinery (data MACs, ToC node MACs, shadow-entry MACs).
//
// Counter-mode encryption generates a One-Time Pad from an Initialization
// Vector containing the block address and its counter (Fig 1 of the paper);
// the pad is XORed with the plaintext. Because the pad depends only on
// (address, counter), pad generation overlaps the memory fetch, hiding
// decryption latency — the timing model in internal/memctrl exploits
// exactly that property.
package ctrenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"math/bits"

	"soteria/internal/config"
	"soteria/internal/telemetry"
)

// BlockSize is the granularity of encryption: one 64-byte memory line.
const BlockSize = config.BlockSize

// MinorBits is the width of each minor counter in a split-counter block
// (VAULT-style 64-ary split counters: 64 minors of 6 bits).
const MinorBits = 6

// MinorMax is the largest value a minor counter can hold before the page
// must be re-encrypted under an incremented major counter.
const MinorMax = (1 << MinorBits) - 1

// CountersPerBlock is the number of data blocks covered by one counter
// block (Table 3: 64-way split counter).
const CountersPerBlock = 64

// Engine performs counter-mode encryption and MAC computation. It is
// deterministic given its keys, which models the on-chip AES engine of the
// memory controller. The zero value is unusable; construct with NewEngine.
//
// An Engine is single-goroutine, matching the memory controller it models
// (each controller — and each device shard — owns its own Engine): the
// scratch buffers below let the hot paths run without heap allocation, at
// the price of not being safe for concurrent use.
type Engine struct {
	aead   cipher.Block // AES-128 for OTP generation
	macKey [32]byte     // key for MAC derivation

	// k0/k1 are the 128-bit hot-path PRF subkeys, derived from the MAC
	// key through the midstate-cached keyed digest below.
	k0, k1 uint64

	// mid is the serialized SHA-256 state after absorbing the MAC key —
	// computed once at NewEngine. keyedSum restores it into the scratch
	// digest instead of rehashing the key, so a keyed digest costs no
	// sha256.New and no key compression.
	mid     []byte
	scratch sha256State
	sum     [sha256.Size]byte

	// pad/iv back the OTP generator. cipher.Block.Encrypt is an interface
	// call, so any stack buffer passed through it is forced to escape;
	// routing the pad and IV through Engine-owned arrays keeps Encrypt /
	// Decrypt allocation-free.
	pad [BlockSize]byte
	iv  [16]byte

	tel telemetryHooks
}

// sha256State is the stdlib sha256 digest viewed through the interfaces
// the midstate cache needs: Write/Sum plus the encoding.BinaryMarshaler /
// BinaryUnmarshaler support crypto/sha256 documents for its digests.
type sha256State interface {
	hash.Hash
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// telemetryHooks holds the engine's metric handles; nil handles (no
// registry attached) are no-ops. OTP generations count one per
// encrypted/decrypted line (CTR mode is an involution, so the pad count
// is the line-crypto op count); MACs are tracked per domain.
type telemetryHooks struct {
	otps *telemetry.Counter
	macs [DomainTenant + 1]*telemetry.Counter
}

// AttachTelemetry registers the engine's metrics on r (nil detaches).
func (e *Engine) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		e.tel = telemetryHooks{}
		return
	}
	e.tel.otps = r.Counter("ctrenc_otp_total")
	for d, name := range map[MACDomain]string{
		DomainData:       "data",
		DomainCounter:    "counter",
		DomainNode:       "node",
		DomainShadow:     "shadow",
		DomainShadowTree: "shadow_tree",
		DomainTenant:     "tenant",
	} {
		e.tel.macs[d] = r.Counter("ctrenc_mac_" + name + "_total")
	}
}

// NewEngine derives the encryption and MAC keys from the given root key
// (any length; it is hashed).
func NewEngine(rootKey []byte) (*Engine, error) {
	h := sha256.Sum256(append([]byte("soteria-enc-key:"), rootKey...))
	blk, err := aes.NewCipher(h[:16])
	if err != nil {
		return nil, fmt.Errorf("ctrenc: %w", err)
	}
	e := &Engine{aead: blk}
	e.macKey = sha256.Sum256(append([]byte("soteria-mac-key:"), rootKey...))

	// Hash the MAC key exactly once and snapshot the digest midstate; every
	// keyed digest from here on restores the snapshot instead of re-keying.
	mh := sha256.New().(sha256State)
	if _, err := mh.Write(e.macKey[:]); err != nil {
		return nil, fmt.Errorf("ctrenc: keying digest: %w", err)
	}
	if e.mid, err = mh.MarshalBinary(); err != nil {
		return nil, fmt.Errorf("ctrenc: snapshot digest midstate: %w", err)
	}
	e.scratch = sha256.New().(sha256State)

	// The per-line 64-bit MAC runs on a SipHash-style PRF whose subkeys
	// come out of the keyed digest, so the whole MAC hierarchy is still
	// rooted in the SHA-256-derived MAC key.
	sub := e.keyedSum([]byte("soteria-mac-subkeys"))
	e.k0 = binary.LittleEndian.Uint64(sub[0:8])
	e.k1 = binary.LittleEndian.Uint64(sub[8:16])
	return e, nil
}

// keyedSum computes SHA-256(macKey || parts...) without allocating: the
// key's compression is replayed from the midstate snapshot and the sum
// lands in the engine's fixed buffer. The returned slice aliases e.sum and
// is only valid until the next keyedSum.
func (e *Engine) keyedSum(parts ...[]byte) []byte {
	if err := e.scratch.UnmarshalBinary(e.mid); err != nil {
		panic(fmt.Sprintf("ctrenc: restore digest midstate: %v", err))
	}
	for _, p := range parts {
		e.scratch.Write(p)
	}
	return e.scratch.Sum(e.sum[:0])
}

// DeriveSubkey derives a 32-byte subkey bound to (label, id, epoch) from
// the engine's MAC key — the root of per-tenant key domains: a tenant's
// data engine is a full Engine constructed from a subkey only the holder
// of the master key can derive, and rotating a tenant's keys is just
// bumping its epoch. The derivation runs through the midstate-cached
// keyed digest (one SHA-256 finalization, no allocation beyond the
// returned array) and is framed unambiguously: a fixed prefix, the
// length-prefixed label, then id and epoch as fixed-width words.
func (e *Engine) DeriveSubkey(label string, id, epoch uint64) [32]byte {
	var frame [17]byte
	frame[0] = byte(len(label))
	binary.LittleEndian.PutUint64(frame[1:9], id)
	binary.LittleEndian.PutUint64(frame[9:17], epoch)
	var out [32]byte
	copy(out[:], e.keyedSum([]byte("soteria-subkey:"), frame[:1], []byte(label), frame[1:]))
	return out
}

// MustNewEngine is NewEngine for static keys; it panics on error.
func MustNewEngine(rootKey []byte) *Engine {
	e, err := NewEngine(rootKey)
	if err != nil {
		panic(err)
	}
	return e
}

// otp generates the 64-byte one-time pad for (addr, counter) into e.pad:
// four AES blocks over an IV of (address, counter, block index, padding).
// The pad lives in the engine so the interface call to the AES block
// cipher never forces a stack buffer to escape.
func (e *Engine) otp(addr, counter uint64) {
	e.tel.otps.Inc()
	binary.LittleEndian.PutUint64(e.iv[0:8], addr)
	binary.LittleEndian.PutUint64(e.iv[8:16], counter)
	for i := 0; i < BlockSize/16; i++ {
		e.iv[15] = byte(i) ^ e.iv[15] // fold block index into the IV tail
		e.aead.Encrypt(e.pad[i*16:(i+1)*16], e.iv[:])
		e.iv[15] ^= byte(i) // restore
	}
}

// Encrypt produces the ciphertext of one line under (addr, counter).
// Counter-mode is an involution: Decrypt is the same operation.
func (e *Engine) Encrypt(addr, counter uint64, plaintext *[BlockSize]byte) [BlockSize]byte {
	e.otp(addr, counter)
	var ct [BlockSize]byte
	for i := range ct {
		ct[i] = plaintext[i] ^ e.pad[i]
	}
	return ct
}

// Decrypt recovers the plaintext of one line; identical to Encrypt because
// CTR mode XORs the same pad.
func (e *Engine) Decrypt(addr, counter uint64, ciphertext *[BlockSize]byte) [BlockSize]byte {
	return e.Encrypt(addr, counter, ciphertext)
}

// MAC domains separate the uses of the 64-bit MAC so a value from one
// context can never be replayed into another.
type MACDomain byte

const (
	// DomainData authenticates (ciphertext, address, counter) of a data
	// block.
	DomainData MACDomain = iota + 1
	// DomainCounter authenticates a leaf (encryption-counter) block
	// under its parent ToC counter.
	DomainCounter
	// DomainNode authenticates an intermediate ToC node under its
	// parent counter.
	DomainNode
	// DomainShadow authenticates an Anubis shadow entry.
	DomainShadow
	// DomainShadowTree authenticates nodes of the eager BMT protecting
	// the shadow region.
	DomainShadowTree
	// DomainTenant authenticates a tenant-layer data line (ciphertext
	// bound to tenant-local line index and write counter) under that
	// tenant's derived key domain.
	DomainTenant
)

// MAC computes the keyed 64-bit MAC over the given parts within a domain.
// tweak1/tweak2 carry the binding context (address or level/index plus the
// protecting parent counter), which is what defeats cross-location replay.
//
// The construction is a SipHash-1-3 PRF keyed from the SHA-256-derived MAC
// key (via the midstate-cached keyed digest in NewEngine): the tweaks are
// absorbed first, then the parts as little-endian 64-bit words, then an
// unambiguous trailer of (partial word, total length, domain). MAC values
// never leave an engine's key lifetime — they are recomputed from the key
// on every boot and never compared across keys — so a fast 64-bit PRF
// preserves every observable result while running in a handful of
// nanoseconds with zero allocations. See DESIGN.md § Performance for the
// measurements behind this choice.
func (e *Engine) MAC(domain MACDomain, tweak1, tweak2 uint64, parts ...[]byte) uint64 {
	if int(domain) < len(e.tel.macs) {
		e.tel.macs[domain].Inc()
	}
	v0 := e.k0 ^ 0x736f6d6570736575
	v1 := e.k1 ^ 0x646f72616e646f6d
	v2 := e.k0 ^ 0x6c7967656e657261
	v3 := e.k1 ^ 0x7465646279746573

	v3 ^= tweak1
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= tweak1
	v3 ^= tweak2
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= tweak2

	var (
		n     uint64 // total part bytes absorbed
		pend  uint64 // partial word under assembly (crosses part boundaries)
		shift uint   // filled bits of pend
	)
	for _, p := range parts {
		n += uint64(len(p))
		if shift == 0 {
			for len(p) >= 8 {
				w := binary.LittleEndian.Uint64(p)
				v3 ^= w
				v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
				v0 ^= w
				p = p[8:]
			}
		}
		for _, b := range p {
			pend |= uint64(b) << shift
			shift += 8
			if shift == 64 {
				v3 ^= pend
				v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
				v0 ^= pend
				pend, shift = 0, 0
			}
		}
	}
	// Trailer: the partial word (zero-padded), then length and domain in
	// one word. The exact byte count disambiguates the zero padding.
	v3 ^= pend
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= pend
	fin := n | uint64(domain)<<56
	v3 ^= fin
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= fin

	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

// sipRound is one SipHash ARX round. Small enough for the compiler to
// inline at every absorption site.
func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = bits.RotateLeft64(v1, 13)
	v1 ^= v0
	v0 = bits.RotateLeft64(v0, 32)
	v2 += v3
	v3 = bits.RotateLeft64(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = bits.RotateLeft64(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = bits.RotateLeft64(v1, 17)
	v1 ^= v2
	v2 = bits.RotateLeft64(v2, 32)
	return v0, v1, v2, v3
}

// DataMAC authenticates one data block: MAC over the ciphertext bound to
// its address and encryption counter (Yan et al. style, as adopted by the
// paper).
func (e *Engine) DataMAC(addr, counter uint64, ciphertext *[BlockSize]byte) uint64 {
	return e.MAC(DomainData, addr, counter, ciphertext[:])
}

// --- Split-counter blocks ---------------------------------------------------

// CounterBlock is a VAULT-style split-counter block: one 64-bit major
// counter shared by 64 data blocks, one 6-bit minor counter per block, and
// the block's own 64-bit MAC (computed under the parent ToC counter).
// It serializes to exactly one 64-byte line:
//
//	bytes  0..7   major counter (LE)
//	bytes  8..55  64 minor counters, 6 bits each, packed little-endian
//	bytes 56..63  MAC (LE)
type CounterBlock struct {
	Major  uint64
	Minors [CountersPerBlock]uint8 // each 0..MinorMax
	MAC    uint64
}

// Counter returns the full encryption counter for slot i:
// major<<MinorBits | minor. This is the value fed into the IV.
func (c *CounterBlock) Counter(i int) uint64 {
	return c.Major<<MinorBits | uint64(c.Minors[i])
}

// Increment advances the minor counter of slot i. It reports overflow=true
// when the minor wrapped, in which case the caller must increment the major
// counter (via BumpMajor) and re-encrypt all covered blocks.
func (c *CounterBlock) Increment(i int) (overflow bool) {
	if c.Minors[i] == MinorMax {
		return true
	}
	c.Minors[i]++
	return false
}

// BumpMajor increments the major counter and clears every minor — the
// page re-encryption event of the split-counter scheme.
func (c *CounterBlock) BumpMajor() {
	c.Major++
	for i := range c.Minors {
		c.Minors[i] = 0
	}
}

// Serialize packs the counter block into a 64-byte line.
func (c *CounterBlock) Serialize() [BlockSize]byte {
	var out [BlockSize]byte
	binary.LittleEndian.PutUint64(out[0:8], c.Major)
	packMinors(out[8:56], &c.Minors)
	binary.LittleEndian.PutUint64(out[56:64], c.MAC)
	return out
}

// DeserializeCounterBlock unpacks a 64-byte line into a counter block.
func DeserializeCounterBlock(line *[BlockSize]byte) CounterBlock {
	var c CounterBlock
	c.Major = binary.LittleEndian.Uint64(line[0:8])
	unpackMinors(line[8:56], &c.Minors)
	c.MAC = binary.LittleEndian.Uint64(line[56:64])
	return c
}

// ContentMAC computes the MAC binding this counter block's contents to its
// block index and protecting parent counter. The stored MAC field is not
// part of the input.
func (c *CounterBlock) ContentMAC(e *Engine, blockIndex, parentCounter uint64) uint64 {
	body := c.Serialize()
	return e.MAC(DomainCounter, blockIndex, parentCounter, body[:56])
}

// packMinors packs 64 6-bit values into 48 bytes.
func packMinors(dst []byte, minors *[CountersPerBlock]uint8) {
	for i := range dst {
		dst[i] = 0
	}
	bit := 0
	for _, m := range minors {
		v := uint16(m & MinorMax)
		byteIdx, off := bit/8, bit%8
		dst[byteIdx] |= byte(v << uint(off))
		if off > 2 { // spills into the next byte
			dst[byteIdx+1] |= byte(v >> uint(8-off))
		}
		bit += MinorBits
	}
}

// unpackMinors reverses packMinors.
func unpackMinors(src []byte, minors *[CountersPerBlock]uint8) {
	bit := 0
	for i := range minors {
		byteIdx, off := bit/8, bit%8
		v := uint16(src[byteIdx]) >> uint(off)
		if off > 2 {
			v |= uint16(src[byteIdx+1]) << uint(8-off)
		}
		minors[i] = uint8(v & MinorMax)
		bit += MinorBits
	}
}
