// Package ctrenc implements the confidentiality layer of the secure memory
// controller: AES-128 counter-mode encryption with VAULT-style 64-ary split
// counters, plus the keyed 64-bit MACs used throughout the integrity
// machinery (data MACs, ToC node MACs, shadow-entry MACs).
//
// Counter-mode encryption generates a One-Time Pad from an Initialization
// Vector containing the block address and its counter (Fig 1 of the paper);
// the pad is XORed with the plaintext. Because the pad depends only on
// (address, counter), pad generation overlaps the memory fetch, hiding
// decryption latency — the timing model in internal/memctrl exploits
// exactly that property.
package ctrenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"soteria/internal/config"
	"soteria/internal/telemetry"
)

// BlockSize is the granularity of encryption: one 64-byte memory line.
const BlockSize = config.BlockSize

// MinorBits is the width of each minor counter in a split-counter block
// (VAULT-style 64-ary split counters: 64 minors of 6 bits).
const MinorBits = 6

// MinorMax is the largest value a minor counter can hold before the page
// must be re-encrypted under an incremented major counter.
const MinorMax = (1 << MinorBits) - 1

// CountersPerBlock is the number of data blocks covered by one counter
// block (Table 3: 64-way split counter).
const CountersPerBlock = 64

// Engine performs counter-mode encryption and MAC computation. It is
// deterministic given its keys, which models the on-chip AES engine of the
// memory controller. The zero value is unusable; construct with NewEngine.
type Engine struct {
	aead   cipher.Block // AES-128 for OTP generation
	macKey [32]byte     // key for MAC derivation
	tel    telemetryHooks
}

// telemetryHooks holds the engine's metric handles; nil handles (no
// registry attached) are no-ops. OTP generations count one per
// encrypted/decrypted line (CTR mode is an involution, so the pad count
// is the line-crypto op count); MACs are tracked per domain.
type telemetryHooks struct {
	otps *telemetry.Counter
	macs [DomainShadowTree + 1]*telemetry.Counter
}

// AttachTelemetry registers the engine's metrics on r (nil detaches).
func (e *Engine) AttachTelemetry(r *telemetry.Registry) {
	if r == nil {
		e.tel = telemetryHooks{}
		return
	}
	e.tel.otps = r.Counter("ctrenc_otp_total")
	for d, name := range map[MACDomain]string{
		DomainData:       "data",
		DomainCounter:    "counter",
		DomainNode:       "node",
		DomainShadow:     "shadow",
		DomainShadowTree: "shadow_tree",
	} {
		e.tel.macs[d] = r.Counter("ctrenc_mac_" + name + "_total")
	}
}

// NewEngine derives the encryption and MAC keys from the given root key
// (any length; it is hashed).
func NewEngine(rootKey []byte) (*Engine, error) {
	h := sha256.Sum256(append([]byte("soteria-enc-key:"), rootKey...))
	blk, err := aes.NewCipher(h[:16])
	if err != nil {
		return nil, fmt.Errorf("ctrenc: %w", err)
	}
	e := &Engine{aead: blk}
	e.macKey = sha256.Sum256(append([]byte("soteria-mac-key:"), rootKey...))
	return e, nil
}

// MustNewEngine is NewEngine for static keys; it panics on error.
func MustNewEngine(rootKey []byte) *Engine {
	e, err := NewEngine(rootKey)
	if err != nil {
		panic(err)
	}
	return e
}

// otp generates the 64-byte one-time pad for (addr, counter): four AES
// blocks over an IV of (address, counter, block index, padding).
func (e *Engine) otp(addr, counter uint64) (pad [BlockSize]byte) {
	e.tel.otps.Inc()
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:8], addr)
	binary.LittleEndian.PutUint64(iv[8:16], counter)
	for i := 0; i < BlockSize/16; i++ {
		iv[15] = byte(i) ^ iv[15] // fold block index into the IV tail
		e.aead.Encrypt(pad[i*16:(i+1)*16], iv[:])
		iv[15] ^= byte(i) // restore
	}
	return pad
}

// Encrypt produces the ciphertext of one line under (addr, counter).
// Counter-mode is an involution: Decrypt is the same operation.
func (e *Engine) Encrypt(addr, counter uint64, plaintext *[BlockSize]byte) [BlockSize]byte {
	pad := e.otp(addr, counter)
	var ct [BlockSize]byte
	for i := range ct {
		ct[i] = plaintext[i] ^ pad[i]
	}
	return ct
}

// Decrypt recovers the plaintext of one line; identical to Encrypt because
// CTR mode XORs the same pad.
func (e *Engine) Decrypt(addr, counter uint64, ciphertext *[BlockSize]byte) [BlockSize]byte {
	return e.Encrypt(addr, counter, ciphertext)
}

// MAC domains separate the uses of the 64-bit MAC so a value from one
// context can never be replayed into another.
type MACDomain byte

const (
	// DomainData authenticates (ciphertext, address, counter) of a data
	// block.
	DomainData MACDomain = iota + 1
	// DomainCounter authenticates a leaf (encryption-counter) block
	// under its parent ToC counter.
	DomainCounter
	// DomainNode authenticates an intermediate ToC node under its
	// parent counter.
	DomainNode
	// DomainShadow authenticates an Anubis shadow entry.
	DomainShadow
	// DomainShadowTree authenticates nodes of the eager BMT protecting
	// the shadow region.
	DomainShadowTree
)

// MAC computes the keyed 64-bit MAC over the given parts within a domain.
// tweak1/tweak2 carry the binding context (address or level/index plus the
// protecting parent counter), which is what defeats cross-location replay.
func (e *Engine) MAC(domain MACDomain, tweak1, tweak2 uint64, parts ...[]byte) uint64 {
	if int(domain) < len(e.tel.macs) {
		e.tel.macs[domain].Inc()
	}
	h := sha256.New()
	h.Write(e.macKey[:])
	var hdr [17]byte
	hdr[0] = byte(domain)
	binary.LittleEndian.PutUint64(hdr[1:9], tweak1)
	binary.LittleEndian.PutUint64(hdr[9:17], tweak2)
	h.Write(hdr[:])
	for _, p := range parts {
		h.Write(p)
	}
	return binary.LittleEndian.Uint64(h.Sum(nil)[:8])
}

// DataMAC authenticates one data block: MAC over the ciphertext bound to
// its address and encryption counter (Yan et al. style, as adopted by the
// paper).
func (e *Engine) DataMAC(addr, counter uint64, ciphertext *[BlockSize]byte) uint64 {
	return e.MAC(DomainData, addr, counter, ciphertext[:])
}

// --- Split-counter blocks ---------------------------------------------------

// CounterBlock is a VAULT-style split-counter block: one 64-bit major
// counter shared by 64 data blocks, one 6-bit minor counter per block, and
// the block's own 64-bit MAC (computed under the parent ToC counter).
// It serializes to exactly one 64-byte line:
//
//	bytes  0..7   major counter (LE)
//	bytes  8..55  64 minor counters, 6 bits each, packed little-endian
//	bytes 56..63  MAC (LE)
type CounterBlock struct {
	Major  uint64
	Minors [CountersPerBlock]uint8 // each 0..MinorMax
	MAC    uint64
}

// Counter returns the full encryption counter for slot i:
// major<<MinorBits | minor. This is the value fed into the IV.
func (c *CounterBlock) Counter(i int) uint64 {
	return c.Major<<MinorBits | uint64(c.Minors[i])
}

// Increment advances the minor counter of slot i. It reports overflow=true
// when the minor wrapped, in which case the caller must increment the major
// counter (via BumpMajor) and re-encrypt all covered blocks.
func (c *CounterBlock) Increment(i int) (overflow bool) {
	if c.Minors[i] == MinorMax {
		return true
	}
	c.Minors[i]++
	return false
}

// BumpMajor increments the major counter and clears every minor — the
// page re-encryption event of the split-counter scheme.
func (c *CounterBlock) BumpMajor() {
	c.Major++
	for i := range c.Minors {
		c.Minors[i] = 0
	}
}

// Serialize packs the counter block into a 64-byte line.
func (c *CounterBlock) Serialize() [BlockSize]byte {
	var out [BlockSize]byte
	binary.LittleEndian.PutUint64(out[0:8], c.Major)
	packMinors(out[8:56], &c.Minors)
	binary.LittleEndian.PutUint64(out[56:64], c.MAC)
	return out
}

// DeserializeCounterBlock unpacks a 64-byte line into a counter block.
func DeserializeCounterBlock(line *[BlockSize]byte) CounterBlock {
	var c CounterBlock
	c.Major = binary.LittleEndian.Uint64(line[0:8])
	unpackMinors(line[8:56], &c.Minors)
	c.MAC = binary.LittleEndian.Uint64(line[56:64])
	return c
}

// ContentMAC computes the MAC binding this counter block's contents to its
// block index and protecting parent counter. The stored MAC field is not
// part of the input.
func (c *CounterBlock) ContentMAC(e *Engine, blockIndex, parentCounter uint64) uint64 {
	body := c.Serialize()
	return e.MAC(DomainCounter, blockIndex, parentCounter, body[:56])
}

// packMinors packs 64 6-bit values into 48 bytes.
func packMinors(dst []byte, minors *[CountersPerBlock]uint8) {
	for i := range dst {
		dst[i] = 0
	}
	bit := 0
	for _, m := range minors {
		v := uint16(m & MinorMax)
		byteIdx, off := bit/8, bit%8
		dst[byteIdx] |= byte(v << uint(off))
		if off > 2 { // spills into the next byte
			dst[byteIdx+1] |= byte(v >> uint(8-off))
		}
		bit += MinorBits
	}
}

// unpackMinors reverses packMinors.
func unpackMinors(src []byte, minors *[CountersPerBlock]uint8) {
	bit := 0
	for i := range minors {
		byteIdx, off := bit/8, bit%8
		v := uint16(src[byteIdx]) >> uint(off)
		if off > 2 {
			v |= uint16(src[byteIdx+1]) << uint(8-off)
		}
		minors[i] = uint8(v & MinorMax)
		bit += MinorBits
	}
}
