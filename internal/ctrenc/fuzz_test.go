package ctrenc

import (
	"bytes"
	"testing"
)

// FuzzCtrEncRoundTrip checks the encryption engine's core contracts on
// arbitrary inputs: counter-mode encrypt/decrypt is an exact involution,
// both the ciphertext and the data MAC are deterministic, and flipping any
// ciphertext byte both changes the MAC and corrupts the decrypted
// plaintext at exactly that byte (CTR's bit-level malleability — which is
// why every block carries a MAC in the first place).
func FuzzCtrEncRoundTrip(f *testing.F) {
	f.Add([]byte("soteria"), uint64(0x1000), uint64(7), []byte("hello, NVM"))
	f.Add([]byte{0}, uint64(0), uint64(0), []byte{})
	f.Add([]byte("k"), uint64(^uint64(0)), uint64(^uint64(0)), bytes.Repeat([]byte{0xFF}, BlockSize))
	f.Fuzz(func(t *testing.T, key []byte, addr, counter uint64, data []byte) {
		e, err := NewEngine(key)
		if err != nil {
			t.Skip() // rejected key (e.g. empty): nothing to test
		}
		var pt [BlockSize]byte
		copy(pt[:], data)

		ct := e.Encrypt(addr, counter, &pt)
		if got := e.Decrypt(addr, counter, &ct); got != pt {
			t.Fatalf("decrypt(encrypt(pt)) != pt\n got %x\nwant %x", got, pt)
		}
		if again := e.Encrypt(addr, counter, &pt); again != ct {
			t.Fatalf("encryption is nondeterministic for fixed (addr, counter)")
		}

		mac := e.DataMAC(addr, counter, &ct)
		if again := e.DataMAC(addr, counter, &ct); again != mac {
			t.Fatalf("DataMAC is nondeterministic")
		}

		flip := int(addr % BlockSize)
		tampered := ct
		tampered[flip] ^= 0x01
		if e.DataMAC(addr, counter, &tampered) == mac {
			t.Fatalf("flipping ciphertext byte %d left the MAC unchanged", flip)
		}
		dec := e.Decrypt(addr, counter, &tampered)
		for i := range dec {
			want := pt[i]
			if i == flip {
				want ^= 0x01
			}
			if dec[i] != want {
				t.Fatalf("CTR malleability violated at byte %d: got %#x want %#x", i, dec[i], want)
			}
		}
	})
}
