package ctrenc

import "testing"

// allocSink keeps the measured calls observable so the compiler cannot
// elide them.
var allocSink uint64

// TestMACZeroAllocs pins the hot-path MAC at zero heap allocations per
// call: the keyed digest midstate and the SipHash state both live in
// Engine-owned scratch, so a regression here means a scratch buffer
// started escaping again.
func TestMACZeroAllocs(t *testing.T) {
	eng := MustNewEngine([]byte("alloc-test-key"))
	var line [BlockSize]byte
	for i := range line {
		line[i] = byte(i)
	}
	avg := testing.AllocsPerRun(1000, func() {
		allocSink = eng.MAC(DomainData, 0x1234, 42, line[:])
	})
	if avg != 0 {
		t.Fatalf("Engine.MAC allocates %.2f objects/op, want 0", avg)
	}
}

// TestDataMACZeroAllocs covers the data-line MAC wrapper the datapath
// calls per read verify and per write.
func TestDataMACZeroAllocs(t *testing.T) {
	eng := MustNewEngine([]byte("alloc-test-key"))
	var line [BlockSize]byte
	avg := testing.AllocsPerRun(1000, func() {
		allocSink = eng.DataMAC(0x40, 7, &line)
	})
	if avg != 0 {
		t.Fatalf("Engine.DataMAC allocates %.2f objects/op, want 0", avg)
	}
}
