package cpusim

import (
	"fmt"

	"soteria/internal/cache"
	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/trace"
)

// MultiCPU models the Table-3 chip organization: several cores with
// private L1/L2 caches sharing one LLC and one secure memory controller.
// Cores issue in round-robin over a single global clock — an in-order
// interleaving that is pessimistic about overlap but identical across the
// protection schemes being compared, which is what the relative
// measurements need.
type MultiCPU struct {
	cores []*CPU
	llc   *cache.Cache[line]
	ctrl  *memctrl.Controller
}

// NewMulti builds cfg.CPU.Cores cores over a shared LLC and controller.
func NewMulti(cfg config.SystemConfig, ctrl *memctrl.Controller) (*MultiCPU, error) {
	n := cfg.CPU.Cores
	if n <= 0 {
		return nil, fmt.Errorf("cpusim: core count must be positive, got %d", n)
	}
	llc, err := cache.New[line](cfg.LLC)
	if err != nil {
		return nil, err
	}
	m := &MultiCPU{llc: llc, ctrl: ctrl}
	for i := 0; i < n; i++ {
		core, err := New(cfg, ctrl)
		if err != nil {
			return nil, err
		}
		core.llc = llc // share
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// Cores returns the number of cores.
func (m *MultiCPU) Cores() int { return len(m.cores) }

// Run interleaves the generators (one per core, wrapping if fewer are
// given) until every core has executed opsPerCore memory operations, and
// returns aggregated statistics.
func (m *MultiCPU) Run(gens []trace.Generator, opsPerCore uint64) (Result, error) {
	if len(gens) == 0 {
		return Result{}, fmt.Errorf("cpusim: need at least one generator")
	}
	type lane struct {
		core *CPU
		gen  trace.Generator
		done bool
	}
	lanes := make([]lane, len(m.cores))
	for i := range lanes {
		lanes[i] = lane{core: m.cores[i], gen: gens[i%len(gens)]}
	}
	var now = m.cores[0].now
	active := len(lanes)
	var rec trace.Record
	for active > 0 {
		for i := range lanes {
			l := &lanes[i]
			if l.done {
				continue
			}
			if l.core.memOps >= opsPerCore || !l.gen.Next(&rec) {
				l.done = true
				active--
				continue
			}
			// Serialize on the shared clock: each core resumes at the
			// global time, then advances it.
			l.core.now = now
			if err := l.core.step(&rec); err != nil {
				return m.result(gens[0].Name()), err
			}
			now = l.core.now
		}
	}
	return m.result(gens[0].Name()), nil
}

// step executes one already-fetched trace record on the core.
func (c *CPU) step(rec *trace.Record) error {
	c.instructions += uint64(rec.Gap)
	c.now += c.cycles(float64(rec.Gap) * c.cfg.CPU.NonMemCPI)
	var err error
	switch rec.Op {
	case trace.OpRead:
		err = c.doRead(c.align(rec.Addr))
	case trace.OpWrite:
		err = c.doWrite(c.align(rec.Addr), false)
	case trace.OpWritePersist:
		err = c.doWrite(c.align(rec.Addr), true)
	case trace.OpBarrier:
		c.barriers++
		c.now = c.ctrl.DrainWPQ(c.now)
		return nil // barriers are not memory operations
	default:
		return fmt.Errorf("cpusim: unknown op %v", rec.Op)
	}
	if err != nil {
		return err
	}
	c.instructions++
	c.memOps++
	return nil
}

func (m *MultiCPU) result(name string) Result {
	r := Result{
		Workload: name,
		Mode:     m.ctrl.Mode().String(),
		Ctrl:     m.ctrl.Stats(),
		Meta:     m.ctrl.MetaStats(),
		WPQ:      m.ctrl.WPQStats(),
		LLC:      m.llc.Stats(),
	}
	for _, c := range m.cores {
		r.Instructions += c.instructions
		r.MemOps += c.memOps
		r.Reads += c.reads
		r.Writes += c.writes
		r.Barriers += c.barriers
		l1 := c.l1.Stats()
		r.L1.Hits += l1.Hits
		r.L1.Misses += l1.Misses
		l2 := c.l2.Stats()
		r.L2.Hits += l2.Hits
		r.L2.Misses += l2.Misses
		if c.now > r.ExecTime {
			r.ExecTime = c.now
		}
	}
	r.LLCMisses = m.llc.Stats().Misses
	return r
}
