// Package cpusim is the trace-driven core and cache-hierarchy model that
// drives the secure memory controller for the performance experiments
// (Fig 10). It models the Table-3 hierarchy — private L1/L2 per stream, a
// shared LLC — charges fixed hit latencies, and forwards LLC misses and
// dirty LLC evictions to the memory controller, which charges NVM, WPQ and
// security-metadata timing.
//
// The model is deliberately simpler than gem5 (in-order, one outstanding
// miss): Soteria's evaluation depends on the *relative* cost of metadata
// cloning, which is governed by eviction rates and write traffic, not by
// out-of-order overlap. DESIGN.md records this substitution.
package cpusim

import (
	"encoding/binary"
	"fmt"

	"soteria/internal/cache"
	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/metacache"
	"soteria/internal/nvm"
	"soteria/internal/sim"
	"soteria/internal/trace"
	"soteria/internal/wpq"
)

// line is the cache payload: actual plaintext contents, so the hierarchy is
// functionally coherent with the encrypted NVM below it.
type line = nvm.Line

// Result summarizes one simulation run.
type Result struct {
	Workload     string
	Mode         string
	Instructions uint64
	MemOps       uint64
	Reads        uint64
	Writes       uint64
	Barriers     uint64
	LLCMisses    uint64
	ExecTime     sim.Time
	Ctrl         memctrl.Stats
	Meta         metacache.Stats
	WPQ          wpq.Stats
	L1, L2, LLC  cache.Stats
}

// CPI returns cycles per instruction at the configured clock.
func (r Result) CPI(hz float64) float64 {
	if r.Instructions == 0 {
		return 0
	}
	cycles := float64(r.ExecTime.Picoseconds()) * hz / 1e12
	return cycles / float64(r.Instructions)
}

// CPU is the trace-driven core model.
type CPU struct {
	cfg    config.SystemConfig
	ctrl   *memctrl.Controller
	l1, l2 *cache.Cache[line]
	llc    *cache.Cache[line]
	now    sim.Time

	cycPS float64 // picoseconds per cycle

	instructions uint64
	memOps       uint64
	reads        uint64
	writes       uint64
	barriers     uint64

	// Check enables end-to-end data verification: every read of a line
	// this run has written must return the last written content.
	Check   bool
	written map[uint64]line
}

// New builds a CPU over an existing controller.
func New(cfg config.SystemConfig, ctrl *memctrl.Controller) (*CPU, error) {
	l1, err := cache.New[line](cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New[line](cfg.L2)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New[line](cfg.LLC)
	if err != nil {
		return nil, err
	}
	return &CPU{
		cfg:     cfg,
		ctrl:    ctrl,
		l1:      l1,
		l2:      l2,
		llc:     llc,
		cycPS:   1e12 / cfg.CPU.ClockHz,
		written: make(map[uint64]line),
	}, nil
}

// Now returns the CPU's current simulated time.
func (c *CPU) Now() sim.Time { return c.now }

func (c *CPU) cycles(n float64) sim.Time { return sim.Time(n * c.cycPS) }

// align clamps a trace address into the data region and aligns it to a
// line.
func (c *CPU) align(addr uint64) uint64 {
	return addr % c.cfg.NVM.CapacityBytes &^ (nvm.LineSize - 1)
}

// Run executes up to memOps memory operations from the generator and
// returns the accumulated statistics. Controller statistics are NOT reset,
// so callers can warm up and then ResetStats for measurement.
func (c *CPU) Run(gen trace.Generator, memOps uint64) (Result, error) {
	var rec trace.Record
	for c.memOps < memOps && gen.Next(&rec) {
		if err := c.step(&rec); err != nil {
			return c.result(gen.Name()), err
		}
	}
	return c.result(gen.Name()), nil
}

func (c *CPU) result(name string) Result {
	return Result{
		Workload:     name,
		Mode:         c.ctrl.Mode().String(),
		Instructions: c.instructions,
		MemOps:       c.memOps,
		Reads:        c.reads,
		Writes:       c.writes,
		Barriers:     c.barriers,
		LLCMisses:    c.llc.Stats().Misses,
		ExecTime:     c.now,
		Ctrl:         c.ctrl.Stats(),
		Meta:         c.ctrl.MetaStats(),
		WPQ:          c.ctrl.WPQStats(),
		L1:           c.l1.Stats(),
		L2:           c.l2.Stats(),
		LLC:          c.llc.Stats(),
	}
}

// doRead services a load through the hierarchy.
func (c *CPU) doRead(addr uint64) error {
	c.reads++
	v, err := c.access(addr)
	if err != nil {
		return err
	}
	if c.Check {
		if want, ok := c.written[addr]; ok && *v != want {
			return fmt.Errorf("cpusim: data corruption at %#x", addr)
		}
	}
	return nil
}

// doWrite services a store; persist additionally writes the line through to
// the controller (clwb) while leaving it clean in the hierarchy.
func (c *CPU) doWrite(addr uint64, persist bool) error {
	c.writes++
	v, err := c.access(addr)
	if err != nil {
		return err
	}
	// Mutate the line deterministically: an embedded (addr, version)
	// pattern that end-to-end checks can validate.
	ver := binary.LittleEndian.Uint64(v[8:16]) + 1
	binary.LittleEndian.PutUint64(v[0:8], addr)
	binary.LittleEndian.PutUint64(v[8:16], ver)
	if c.Check {
		c.written[addr] = *v
	}
	if persist {
		now, err := c.ctrl.WriteBlock(c.now, addr, v)
		if err != nil {
			return err
		}
		c.now = now
		// clwb semantics: every cached copy now matches memory and is
		// clean. Stale dirty copies in L2/LLC must not survive, or
		// their eventual eviction would overwrite the newer persisted
		// data.
		content := *v
		c.l1.CleanLine(addr)
		if lv, ok := c.l2.Peek(addr); ok {
			*lv = content
			c.l2.CleanLine(addr)
		}
		if lv, ok := c.llc.Peek(addr); ok {
			*lv = content
			c.llc.CleanLine(addr)
		}
		return nil
	}
	if !c.l1.MarkDirty(addr) {
		panic("cpusim: written line not resident in L1")
	}
	return nil
}

// access ensures addr is resident in L1 (fetching through L2, LLC and the
// controller as needed) and returns a pointer to its L1 payload.
func (c *CPU) access(addr uint64) (*line, error) {
	if v, ok := c.l1.Lookup(addr); ok {
		c.now += c.cycles(float64(c.cfg.L1.LatencyCycles))
		return v, nil
	}
	c.now += c.cycles(float64(c.cfg.L1.LatencyCycles))
	v, ok := c.l2.Lookup(addr)
	var content line
	if ok {
		c.now += c.cycles(float64(c.cfg.L2.LatencyCycles))
		content = *v
	} else {
		c.now += c.cycles(float64(c.cfg.L2.LatencyCycles))
		lv, ok := c.llc.Lookup(addr)
		if ok {
			c.now += c.cycles(float64(c.cfg.LLC.LatencyCycles))
			content = *lv
		} else {
			c.now += c.cycles(float64(c.cfg.LLC.LatencyCycles))
			data, done, err := c.ctrl.ReadBlock(c.now, addr)
			if err != nil {
				return nil, err
			}
			c.now = done
			content = data
		}
		// Allocate in LLC and L2 on the way up.
		if !ok {
			if err := c.installLLC(addr, content, false); err != nil {
				return nil, err
			}
		}
		c.installL2(addr, content, false)
	}
	// Allocate in L1.
	if ev, has := c.l1.Insert(addr, content, false); has && ev.Dirty {
		c.installL2(ev.Addr, ev.Value, true)
	}
	v2, ok2 := c.l1.Peek(addr)
	if !ok2 {
		panic("cpusim: line vanished from L1 after insert")
	}
	return v2, nil
}

func (c *CPU) installL2(addr uint64, content line, dirty bool) {
	if dirty {
		// A dirty line falling out of L1 merges into L2 if resident.
		if v, ok := c.l2.Peek(addr); ok {
			*v = content
			c.l2.MarkDirty(addr)
			return
		}
	}
	if ev, has := c.l2.Insert(addr, content, dirty); has && ev.Dirty {
		c.installLLCOrDrop(ev.Addr, ev.Value)
	}
}

func (c *CPU) installLLC(addr uint64, content line, dirty bool) error {
	if ev, has := c.llc.Insert(addr, content, dirty); has && ev.Dirty {
		now, err := c.ctrl.WriteBlock(c.now, ev.Addr, &ev.Value)
		if err != nil {
			return err
		}
		c.now = now
	}
	return nil
}

// installLLCOrDrop handles dirty L2 victims: merge into a resident LLC line
// or allocate one; controller write-back errors on this path are fatal
// (they only occur under injected faults in tests, which use direct
// controller access instead).
func (c *CPU) installLLCOrDrop(addr uint64, content line) {
	if v, ok := c.llc.Peek(addr); ok {
		*v = content
		c.llc.MarkDirty(addr)
		return
	}
	if err := c.installLLC(addr, content, true); err != nil {
		panic(fmt.Sprintf("cpusim: write-back failed: %v", err))
	}
}
