package cpusim

import (
	"testing"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/trace"
	"soteria/internal/workload"
)

func newCPU(t testing.TB, mode memctrl.Mode) *CPU {
	t.Helper()
	cfg := config.TestSystem()
	ctrl, err := memctrl.New(cfg, mode, []byte("k"), memctrl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := New(cfg, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestRunUBenchAllModes(t *testing.T) {
	for _, mode := range []memctrl.Mode{memctrl.ModeNonSecure, memctrl.ModeBaseline, memctrl.ModeSRC, memctrl.ModeSAC} {
		t.Run(mode.String(), func(t *testing.T) {
			cpu := newCPU(t, mode)
			gen := workload.UBench(64).New(config.TestSystem().NVM.CapacityBytes, 1)
			res, err := cpu.Run(gen, 5000)
			if err != nil {
				t.Fatal(err)
			}
			if res.MemOps != 5000 {
				t.Fatalf("memOps = %d", res.MemOps)
			}
			if res.ExecTime <= 0 {
				t.Fatal("no time elapsed")
			}
			if res.Reads == 0 || res.Writes == 0 {
				t.Fatalf("uBENCH must mix reads and writes: %d/%d", res.Reads, res.Writes)
			}
		})
	}
}

func TestEndToEndDataIntegrityThroughHierarchy(t *testing.T) {
	cpu := newCPU(t, memctrl.ModeSRC)
	cpu.Check = true
	gen := workload.ByNameMust("hashmap").New(1<<20, 42)
	if _, err := cpu.Run(gen, 20000); err != nil {
		t.Fatalf("data corruption through hierarchy: %v", err)
	}
}

func TestSecureSlowerThanNonSecureAndSoteriaNearBaseline(t *testing.T) {
	run := func(mode memctrl.Mode) Result {
		cpu := newCPU(t, mode)
		gen := workload.UBench(128).New(config.TestSystem().NVM.CapacityBytes, 7)
		res, err := cpu.Run(gen, 20000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ns := run(memctrl.ModeNonSecure)
	base := run(memctrl.ModeBaseline)
	src := run(memctrl.ModeSRC)
	if base.ExecTime <= ns.ExecTime {
		t.Fatalf("secure baseline (%v) not slower than non-secure (%v)", base.ExecTime, ns.ExecTime)
	}
	over := float64(src.ExecTime) / float64(base.ExecTime)
	if over < 0.99 {
		t.Fatalf("SRC faster than baseline? ratio %.3f", over)
	}
	if over > 1.25 {
		t.Fatalf("SRC overhead %.1f%% implausibly high (paper: ~1%%)", (over-1)*100)
	}
}

func TestBarriersDrainWPQ(t *testing.T) {
	cpu := newCPU(t, memctrl.ModeBaseline)
	recs := []trace.Record{
		{Op: trace.OpWritePersist, Addr: 0, Gap: 1},
		{Op: trace.OpBarrier},
		{Op: trace.OpWritePersist, Addr: 64, Gap: 1},
	}
	res, err := cpu.Run(trace.NewSlice("t", recs), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 1 {
		t.Fatalf("barriers = %d", res.Barriers)
	}
	if res.MemOps != 2 {
		t.Fatalf("barriers must not count as memory ops: %d", res.MemOps)
	}
}

func TestWorkloadSuiteSmoke(t *testing.T) {
	// Every workload in the suite must run without error on the secure
	// controller and actually reach memory.
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cpu := newCPU(t, memctrl.ModeSAC)
			gen := w.New(2<<20, 99)
			res, err := cpu.Run(gen, 3000)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if res.MemOps != 3000 {
				t.Fatalf("%s stalled at %d ops", w.Name, res.MemOps)
			}
			if res.Ctrl.MemRequests == 0 {
				t.Fatalf("%s never missed the hierarchy", w.Name)
			}
		})
	}
}

func TestCacheHierarchyFiltersTraffic(t *testing.T) {
	cpu := newCPU(t, memctrl.ModeBaseline)
	// A tiny footprint of ordinary (non-persistent) accesses fits in L1:
	// after warm-up, no controller traffic. (Persistent workloads write
	// through by design, so they always reach the controller.)
	gen := workload.ByNameMust("gcc").New(1<<10, 1)
	res, err := cpu.Run(gen, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ctrl.MemRequests > 200 {
		t.Fatalf("cache-resident workload leaked %d requests to memory", res.Ctrl.MemRequests)
	}
	if res.L1.Hits == 0 {
		t.Fatal("no L1 hits")
	}
}

func TestMultiCoreRun(t *testing.T) {
	cfg := config.TestSystem()
	ctrl, err := memctrl.New(cfg, memctrl.ModeSRC, []byte("k"), memctrl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMulti(cfg, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != cfg.CPU.Cores {
		t.Fatalf("cores = %d, want %d", m.Cores(), cfg.CPU.Cores)
	}
	gens := make([]trace.Generator, m.Cores())
	for i := range gens {
		gens[i] = workload.ByNameMust("hashmap").New(1<<20, int64(i+1))
	}
	res, err := m.Run(gens, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemOps != uint64(3000*m.Cores()) {
		t.Fatalf("memOps = %d", res.MemOps)
	}
	if res.ExecTime <= 0 || res.Ctrl.MemRequests == 0 {
		t.Fatal("no progress")
	}
	// All cores share the LLC: its accesses must reflect every core's
	// misses, and the shared controller must have seen traffic from all.
	if res.LLC.Hits+res.LLC.Misses == 0 {
		t.Fatal("shared LLC unused")
	}
}

func TestMultiCoreSharedLLCConstructiveSharing(t *testing.T) {
	cfg := config.TestSystem()
	ctrl, _ := memctrl.New(cfg, memctrl.ModeBaseline, []byte("k"), memctrl.Options{})
	m, _ := NewMulti(cfg, ctrl)
	// Every core streams the same small region with the same seed: after
	// one core faults a line into the shared LLC, the others hit it.
	gens := make([]trace.Generator, m.Cores())
	for i := range gens {
		gens[i] = workload.ByNameMust("gcc").New(1<<14, 7)
	}
	res, err := m.Run(gens, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.Hits == 0 {
		t.Fatal("no constructive sharing in the shared LLC")
	}
}

func TestMultiCoreRejectsBadInput(t *testing.T) {
	cfg := config.TestSystem()
	cfg.CPU.Cores = 0
	ctrl, _ := memctrl.New(config.TestSystem(), memctrl.ModeBaseline, []byte("k"), memctrl.Options{})
	if _, err := NewMulti(cfg, ctrl); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg.CPU.Cores = 2
	m, err := NewMulti(cfg, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil, 10); err == nil {
		t.Fatal("nil generators accepted")
	}
}
