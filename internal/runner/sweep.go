package runner

import (
	"fmt"

	"soteria/internal/config"
	"soteria/internal/faultsim"
)

// FaultSweep specifies a multi-point faultsim campaign: the same DIMM,
// trial budget and scheme set evaluated at every FIT point. The schemes
// see identical fault histories at each point.
type FaultSweep struct {
	Config config.FaultSimConfig
	// FITs are the per-chip failure rates to sweep (the paper uses
	// 1..80).
	FITs []float64
	// Trials per FIT point (0 = Config.Trials).
	Trials int
	// Seed fixes every point's fault stream.
	Seed int64
	// Conditional selects importance sampling (see faultsim.Options).
	Conditional bool
	// ECC selects the correction model.
	ECC faultsim.ECCModel
	// BlockSize overrides the deterministic block granularity
	// (0 = faultsim.DefaultBlockSize).
	BlockSize int
	// Schemes are evaluated against the shared fault stream.
	Schemes []*faultsim.Scheme
	// Label names the sweep in progress output (default "faultsim").
	Label string
}

func (s FaultSweep) options(fit float64) faultsim.Options {
	return faultsim.Options{
		Config:      s.Config,
		TotalFIT:    fit,
		Trials:      s.Trials,
		Seed:        s.Seed,
		BlockSize:   s.BlockSize,
		Conditional: s.Conditional,
		ECC:         s.ECC,
	}
}

// pointKey builds the cache key of one FIT point. Everything that can
// change the numbers is hashed: the full fault-sim configuration, the
// sampling options, and each scheme's complete layout (which encodes the
// clone policy, shadow sizing and address map).
func (s FaultSweep) pointKey(fit float64) string {
	parts := []interface{}{s.Config, fit, s.Trials, s.Seed, s.Conditional, s.ECC, s.BlockSize}
	for _, sc := range s.Schemes {
		parts = append(parts, sc.Name, sc.Secure, sc.RecomputableIntermediates, *sc.Layout)
	}
	return cacheKey("fsim", parts...)
}

// Point is one completed sweep point, delivered through Options.OnPoint.
// Result carries the per-scheme numbers and, when the simulator recorded
// any, the merged telemetry snapshot (Result.Telemetry).
type Point struct {
	// Label is the sweep label the point belongs to.
	Label string
	// Index is the point's position in FaultSweep.FITs.
	Index int
	// FIT is the swept per-chip failure rate.
	FIT float64
	// Cached reports that the point was served from the on-disk cache
	// without running any trials.
	Cached bool
	// Result is the full point result (never nil).
	Result *faultsim.Result
}

// RunFaultSweep evaluates every FIT point of the sweep through the
// engine's worker pool. Parallelism spans the whole campaign — the pool
// draws (point, block) work units, so a single slow point cannot idle the
// other workers — and the result is bit-identical for any worker count.
// Points whose cache entry exists are served from disk without running a
// single trial.
func (e *Engine) RunFaultSweep(s FaultSweep) ([]*faultsim.Result, error) {
	if len(s.FITs) == 0 {
		return nil, fmt.Errorf("runner: fault sweep needs at least one FIT point")
	}
	label := s.Label
	if label == "" {
		label = "faultsim"
	}

	results := make([]*faultsim.Result, len(s.FITs))
	keys := make([]string, len(s.FITs))
	fromCache := make([]bool, len(s.FITs))
	var pending []int
	for i, fit := range s.FITs {
		keys[i] = s.pointKey(fit)
		var cached faultsim.Result
		if e.cacheLoad(keys[i], &cached, func() bool {
			return cached.Trials > 0 && len(cached.Schemes) > 0
		}) {
			results[i] = &cached
			fromCache[i] = true
			continue
		}
		pending = append(pending, i)
	}
	emitPoints := func() {
		if e.opt.OnPoint == nil {
			return
		}
		for i, fit := range s.FITs {
			e.opt.OnPoint(Point{
				Label: label, Index: i, FIT: fit,
				Cached: fromCache[i], Result: results[i],
			})
		}
	}
	if len(pending) == 0 {
		emitPoints()
		return results, nil
	}

	// Flatten the pending points into one (point, block) job list so the
	// pool load-balances across the whole campaign.
	type job struct{ point, block int }
	runners := make([]*faultsim.BlockRunner, len(s.FITs))
	parts := make([][]faultsim.Partial, len(s.FITs))
	var jobs []job
	for _, i := range pending {
		br, err := faultsim.NewBlockRunner(s.options(s.FITs[i]), s.Schemes)
		if err != nil {
			return nil, err
		}
		runners[i] = br
		parts[i] = make([]faultsim.Partial, br.NumBlocks())
		for b := 0; b < br.NumBlocks(); b++ {
			jobs = append(jobs, job{point: i, block: b})
		}
	}
	err := e.Do(label, len(jobs), func(j int) error {
		jb := jobs[j]
		parts[jb.point][jb.block] = runners[jb.point].RunBlock(jb.block)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, i := range pending {
		results[i] = runners[i].Merge(parts[i])
		e.cacheStore(keys[i], results[i])
	}
	emitPoints()
	return results, nil
}

// RunFaultPoint is the single-point convenience form of RunFaultSweep.
func (e *Engine) RunFaultPoint(s FaultSweep, fit float64) (*faultsim.Result, error) {
	s.FITs = []float64{fit}
	res, err := e.RunFaultSweep(s)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}
