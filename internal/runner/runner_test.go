package runner

import (
	"bytes"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/faultsim"
)

func testSchemes(t testing.TB) []*faultsim.Scheme {
	t.Helper()
	d := config.Table4().DIMM
	schemes := []*faultsim.Scheme{faultsim.NonSecureScheme(d)}
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC()} {
		s, err := faultsim.BuildScheme(d, pol, 8192)
		if err != nil {
			t.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	return schemes
}

func testSweep(t testing.TB, trials int, fits []float64) FaultSweep {
	return FaultSweep{
		Config:      config.Table4(),
		FITs:        fits,
		Trials:      trials,
		Seed:        11,
		Conditional: true,
		BlockSize:   256,
		Schemes:     testSchemes(t),
	}
}

func TestDoRunsEveryJobOnce(t *testing.T) {
	e := New(Options{Workers: 8})
	var hits [200]atomic.Int32
	if err := e.Do("jobs", len(hits), func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestDoPropagatesFirstError(t *testing.T) {
	e := New(Options{Workers: 4})
	boom := errors.New("boom")
	var ran atomic.Int32
	err := e.Do("jobs", 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("error did not stop dispatch (ran %d jobs)", n)
	}
}

func TestDoReportsProgress(t *testing.T) {
	var got []Progress
	e := New(Options{Workers: 2, ProgressEvery: 1, OnProgress: func(p Progress) {
		got = append(got, p)
	}})
	if err := e.Do("label", 10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no progress updates")
	}
	last := got[len(got)-1]
	if last.Done != 10 || last.Total != 10 || last.Label != "label" {
		t.Fatalf("terminal update = %+v", last)
	}
	for _, p := range got {
		if p.Done > p.Total {
			t.Fatalf("overflowing update %+v", p)
		}
	}
}

// The engine's headline guarantee: the same sweep produces bit-identical
// results at any worker count, including Workers far beyond the block
// count of a single point.
func TestFaultSweepWorkerCountInvariance(t *testing.T) {
	sweep := testSweep(t, 1500, []float64{20, 80})
	var want []*faultsim.Result
	for _, workers := range []int{1, 3, 16} {
		e := New(Options{Workers: workers})
		got, err := e.RunFaultSweep(sweep)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// A sweep and per-point faultsim.Run calls must agree exactly: the runner
// changes scheduling, never numbers.
func TestFaultSweepMatchesDirectRun(t *testing.T) {
	sweep := testSweep(t, 1000, []float64{40, 80})
	e := New(Options{Workers: 4})
	got, err := e.RunFaultSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	for i, fit := range sweep.FITs {
		want, err := faultsim.Run(sweep.options(fit), sweep.Schemes)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("FIT %g: sweep %+v != direct %+v", fit, got[i], want)
		}
	}
}

func TestFaultSweepCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sweep := testSweep(t, 800, []float64{80})

	e := New(Options{Workers: 4, CacheDir: dir})
	first, err := e.RunFaultSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}

	// Second run must be served from disk: verify by giving the engine a
	// job function counter via progress (no blocks should run).
	var units atomic.Int32
	e2 := New(Options{Workers: 4, CacheDir: dir, ProgressEvery: 1,
		OnProgress: func(Progress) { units.Add(1) }})
	second, err := e2.RunFaultSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if units.Load() != 0 {
		t.Fatalf("cache hit still ran %d work units", units.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result diverged:\n got %+v\nwant %+v", second, first)
	}

	// A different seed must miss.
	sweep.Seed++
	third, err := e2.RunFaultSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, third) && first[0].Schemes[1].TotalLUnv != 0 {
		t.Fatal("different seed served the old cache entry")
	}
}

// Per-point telemetry inherits the engine's headline guarantee: the
// merged snapshot is byte-identical JSON at any worker count.
func TestFaultSweepTelemetryWorkerInvariance(t *testing.T) {
	sweep := testSweep(t, 1200, []float64{80})
	var want []byte
	for _, workers := range []int{1, 4} {
		e := New(Options{Workers: workers})
		res, err := e.RunFaultSweep(sweep)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Telemetry == nil {
			t.Fatal("sweep point carries no telemetry snapshot")
		}
		got, err := res[0].Telemetry.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		if trials := res[0].Telemetry.Counters["faultsim_trials_total"]; trials != 1200 {
			t.Fatalf("faultsim_trials_total = %d, want 1200", trials)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d telemetry diverged:\n%s\n---\n%s", workers, got, want)
		}
	}
}

// OnPoint must fire once per point, in point order, flag cache hits, and
// round-trip the telemetry snapshot through the on-disk cache.
func TestFaultSweepOnPoint(t *testing.T) {
	dir := t.TempDir()
	sweep := testSweep(t, 600, []float64{40, 80})

	run := func() []Point {
		var pts []Point
		e := New(Options{Workers: 4, CacheDir: dir, OnPoint: func(p Point) {
			pts = append(pts, p)
		}})
		if _, err := e.RunFaultSweep(sweep); err != nil {
			t.Fatal(err)
		}
		return pts
	}

	fresh := run()
	if len(fresh) != 2 {
		t.Fatalf("OnPoint fired %d times, want 2", len(fresh))
	}
	for i, p := range fresh {
		if p.Index != i || p.FIT != sweep.FITs[i] || p.Label != "faultsim" {
			t.Fatalf("point %d mislabeled: %+v", i, p)
		}
		if p.Cached {
			t.Fatalf("point %d flagged cached on a cold run", i)
		}
		if p.Result == nil || p.Result.Telemetry == nil {
			t.Fatalf("point %d missing result or telemetry", i)
		}
	}

	cached := run()
	if len(cached) != 2 {
		t.Fatalf("cached OnPoint fired %d times, want 2", len(cached))
	}
	for i, p := range cached {
		if !p.Cached {
			t.Fatalf("point %d not flagged cached on a warm run", i)
		}
		if p.Result.Telemetry == nil {
			t.Fatalf("point %d telemetry lost through the cache", i)
		}
		a, err := p.Result.Telemetry.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh[i].Result.Telemetry.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("point %d cached telemetry diverged:\n%s\n---\n%s", i, a, b)
		}
	}
}

func TestFaultSweepRejectsEmpty(t *testing.T) {
	e := New(Options{})
	if _, err := e.RunFaultSweep(FaultSweep{}); err == nil {
		t.Fatal("empty sweep did not error")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	s := testSweep(t, 800, []float64{80})
	base := s.pointKey(80)
	if s.pointKey(40) == base {
		t.Fatal("FIT not in key")
	}
	s2 := s
	s2.Seed++
	if s2.pointKey(80) == base {
		t.Fatal("seed not in key")
	}
	s3 := s
	s3.Trials++
	if s3.pointKey(80) == base {
		t.Fatal("trials not in key")
	}
	s4 := s
	s4.Schemes = s.Schemes[:2]
	if s4.pointKey(80) == base {
		t.Fatal("scheme set not in key")
	}
	s5 := s
	s5.BlockSize = 512
	if s5.pointKey(80) == base {
		t.Fatal("block size not in key")
	}
}
