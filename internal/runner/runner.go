// Package runner is the unified parallel experiment engine: one worker
// pool drives both the faultsim FIT sweeps and the performance pipeline.
// It adds three properties every evaluation harness in this repository
// shares:
//
//   - determinism — work is scheduled in fixed units whose results do not
//     depend on the worker count (faultsim trial blocks carry their own
//     RNG streams and merge in block order);
//   - progress — long sweeps report done/total and an ETA through one
//     throttled callback;
//   - caching — sweep results persist to disk keyed by a config+seed
//     hash, so re-running an unchanged sweep is instant.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is one throttled status update for a running sweep.
type Progress struct {
	// Label names the sweep the update concerns.
	Label string
	// Done and Total count completed work units (trial blocks for fault
	// sweeps, simulations for performance sweeps).
	Done, Total int
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration
	// ETA extrapolates the remaining time from throughput so far (zero
	// until at least one unit finished).
	ETA time.Duration
}

// Options configures an Engine.
type Options struct {
	// Workers bounds worker-pool parallelism (0 = GOMAXPROCS). Results
	// never depend on it.
	Workers int
	// CacheDir enables on-disk result caching when non-empty. Entries
	// are keyed by a hash of the full sweep configuration (config,
	// seed, trials, schemes, cache format version), so a stale hit is
	// only possible when the simulation code changes without a
	// cacheFormat bump.
	CacheDir string
	// OnProgress, when non-nil, receives throttled progress updates.
	// It is called from worker goroutines, but never concurrently.
	OnProgress func(Progress)
	// ProgressEvery throttles OnProgress (default 200ms). The final
	// update of a sweep is always delivered.
	ProgressEvery time.Duration
	// OnPoint, when non-nil, receives every completed fault-sweep point
	// (including cache hits) with its full result and telemetry
	// snapshot. Calls are serialized and arrive in point order.
	OnPoint func(Point)
	// Logf, when non-nil, receives warnings the engine would otherwise
	// swallow — corrupt cache entries being invalidated, for example.
	// Pass log.Printf (or a stderr writer) from a CLI; nil discards.
	Logf func(format string, args ...interface{})
}

// Engine executes experiment sweeps through one bounded worker pool.
type Engine struct {
	opt Options
}

// New returns an engine with the given options.
func New(opt Options) *Engine {
	return &Engine{opt: opt}
}

// logf forwards to Options.Logf when set.
func (e *Engine) logf(format string, args ...interface{}) {
	if e.opt.Logf != nil {
		e.opt.Logf(format, args...)
	}
}

// Workers returns the effective pool size.
func (e *Engine) Workers() int {
	if e.opt.Workers > 0 {
		return e.opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs n independent jobs through the worker pool, calling fn(i) for
// each. The first error stops the dispatch of further jobs (in-flight
// jobs finish) and is returned. Progress is reported per completed job
// under the given label.
func (e *Engine) Do(label string, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	prog := e.newProgress(label, n)
	var next, done atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				prog.step(int(done.Add(1)))
			}
		}()
	}
	wg.Wait()
	prog.finish()
	return firstErr
}

// progressMeter throttles and serializes OnProgress callbacks.
type progressMeter struct {
	e     *Engine
	label string
	total int
	start time.Time
	every time.Duration

	mu   sync.Mutex
	last time.Time
	done int
}

func (e *Engine) newProgress(label string, total int) *progressMeter {
	every := e.opt.ProgressEvery
	if every <= 0 {
		every = 200 * time.Millisecond
	}
	return &progressMeter{e: e, label: label, total: total, start: time.Now(), every: every}
}

// step records that `done` units are complete and maybe emits an update.
func (p *progressMeter) step(done int) {
	if p.e.opt.OnProgress == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if done > p.done {
		p.done = done
	}
	now := time.Now()
	if now.Sub(p.last) < p.every && p.done < p.total {
		return
	}
	p.last = now
	p.emitLocked(now)
}

// finish emits the terminal update (idempotent enough: Done==Total).
func (p *progressMeter) finish() {
	if p.e.opt.OnProgress == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done = p.total
	p.emitLocked(time.Now())
}

func (p *progressMeter) emitLocked(now time.Time) {
	elapsed := now.Sub(p.start)
	var eta time.Duration
	if p.done > 0 && p.done < p.total {
		eta = time.Duration(float64(elapsed) * float64(p.total-p.done) / float64(p.done))
	}
	p.e.opt.OnProgress(Progress{
		Label: p.label, Done: p.done, Total: p.total,
		Elapsed: elapsed, ETA: eta,
	})
}

// WriteProgress returns an OnProgress callback that renders updates as
// single overwritten lines on w (pass os.Stderr from a CLI). It is the
// standard progress sink for the sweep commands.
func WriteProgress(w io.Writer) func(Progress) {
	return func(p Progress) {
		pct := 0.0
		if p.Total > 0 {
			pct = 100 * float64(p.Done) / float64(p.Total)
		}
		if p.Done < p.Total {
			fmt.Fprintf(w, "\r%s: %d/%d (%.1f%%) eta %s   ",
				p.Label, p.Done, p.Total, pct, p.ETA.Round(time.Second))
		} else {
			fmt.Fprintf(w, "\r%s: %d/%d done in %s        \n",
				p.Label, p.Total, p.Total, p.Elapsed.Round(time.Millisecond))
		}
	}
}
