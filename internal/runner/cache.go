package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheFormat versions every cache entry. Bump it whenever a simulator
// change alters results without changing the configuration (e.g. a new
// RNG schedule), so stale entries can never be mistaken for fresh ones.
//
// History: 2 — faultsim.Result gained the Telemetry snapshot; entries
// written before it would deserialize with a nil snapshot and look like
// a telemetry-free run.
const cacheFormat = 2

// cacheKey hashes an arbitrary canonical description into an entry name.
// The description is built with fmt %+v over plain (pointer-free) structs,
// so identical configurations hash identically across processes.
func cacheKey(kind string, parts ...interface{}) string {
	h := sha256.New()
	fmt.Fprintf(h, "format=%d kind=%s", cacheFormat, kind)
	for _, p := range parts {
		fmt.Fprintf(h, "|%+v", p)
	}
	return kind + "-" + hex.EncodeToString(h.Sum(nil))[:24]
}

// cacheLoad reads a cached value into v; ok reports a usable hit. A
// missing file is an ordinary miss. A file that exists but is corrupt —
// truncated mid-write, garbled, or decoding "successfully" into a value
// the caller's valid check rejects (the JSON literal null does exactly
// that: it leaves v a zero struct) — is logged through Options.Logf and
// deleted, so the point is recomputed and the entry rewritten instead of
// the sweep failing or silently serving a zero-value result.
func (e *Engine) cacheLoad(key string, v interface{}, valid func() bool) bool {
	if e.opt.CacheDir == "" {
		return false
	}
	path := filepath.Join(e.opt.CacheDir, key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		e.invalidate(path, key, err.Error())
		return false
	}
	if valid != nil && !valid() {
		e.invalidate(path, key, "entry decodes to an implausible result")
		return false
	}
	return true
}

// invalidate logs and removes a corrupt cache entry. Removal failures are
// tolerated: the next cacheStore rewrites the file through a rename
// anyway.
func (e *Engine) invalidate(path, key, reason string) {
	e.logf("runner: invalidating corrupt cache entry %s: %s", key, reason)
	os.Remove(path)
}

// cacheStore persists v under key. Failures are silent: caching is an
// accelerator, never a correctness dependency. The write goes through a
// temp file + rename so concurrent sweeps sharing a cache directory never
// observe torn entries.
func (e *Engine) cacheStore(key string, v interface{}) {
	if e.opt.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(e.opt.CacheDir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return
	}
	path := filepath.Join(e.opt.CacheDir, key+".json")
	tmp, err := os.CreateTemp(e.opt.CacheDir, key+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), path)
}
