package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheFormat versions every cache entry. Bump it whenever a simulator
// change alters results without changing the configuration (e.g. a new
// RNG schedule), so stale entries can never be mistaken for fresh ones.
//
// History: 2 — faultsim.Result gained the Telemetry snapshot; entries
// written before it would deserialize with a nil snapshot and look like
// a telemetry-free run.
const cacheFormat = 2

// cacheKey hashes an arbitrary canonical description into an entry name.
// The description is built with fmt %+v over plain (pointer-free) structs,
// so identical configurations hash identically across processes.
func cacheKey(kind string, parts ...interface{}) string {
	h := sha256.New()
	fmt.Fprintf(h, "format=%d kind=%s", cacheFormat, kind)
	for _, p := range parts {
		fmt.Fprintf(h, "|%+v", p)
	}
	return kind + "-" + hex.EncodeToString(h.Sum(nil))[:24]
}

// cacheLoad reads a cached value into v; ok reports a usable hit. Any
// read or decode error is treated as a miss (the entry is recomputed and
// rewritten).
func (e *Engine) cacheLoad(key string, v interface{}) bool {
	if e.opt.CacheDir == "" {
		return false
	}
	data, err := os.ReadFile(filepath.Join(e.opt.CacheDir, key+".json"))
	if err != nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// cacheStore persists v under key. Failures are silent: caching is an
// accelerator, never a correctness dependency. The write goes through a
// temp file + rename so concurrent sweeps sharing a cache directory never
// observe torn entries.
func (e *Engine) cacheStore(key string, v interface{}) {
	if e.opt.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(e.opt.CacheDir, 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return
	}
	path := filepath.Join(e.opt.CacheDir, key+".json")
	tmp, err := os.CreateTemp(e.opt.CacheDir, key+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), path)
}
