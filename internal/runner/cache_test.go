package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// A corrupt or truncated cache entry must never fail a sweep or serve a
// bogus result: the engine logs it, deletes it, recomputes the point, and
// rewrites the entry. Regression test for the silent-miss era, when a
// literal "null" entry decoded into a zero-value Result and was served as
// a hit.
func TestCorruptCacheEntriesAreInvalidated(t *testing.T) {
	dir := t.TempDir()
	sweep := testSweep(t, 400, []float64{10, 20, 40, 80})

	e := New(Options{Workers: 4, CacheDir: dir})
	fresh, err := e.RunFaultSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(entries)
	if len(entries) != len(sweep.FITs) {
		t.Fatalf("cache holds %d entries, want %d", len(entries), len(sweep.FITs))
	}

	// Garble three of the four entries, each a different way; the fourth
	// stays intact and must still be served from disk.
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err) // truncated mid-write
	}
	if err := os.WriteFile(entries[1], []byte("\x00garbage\xff not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[2], []byte("null"), 0o644); err != nil {
		t.Fatal(err) // decodes cleanly into a zero-value Result
	}

	var logs []string
	var points []Point
	e2 := New(Options{
		Workers:  4,
		CacheDir: dir,
		Logf:     func(format string, args ...interface{}) { logs = append(logs, fmt.Sprintf(format, args...)) },
		OnPoint:  func(p Point) { points = append(points, p) },
	})
	second, err := e2.RunFaultSweep(sweep)
	if err != nil {
		t.Fatalf("sweep failed on corrupt cache: %v", err)
	}
	if !reflect.DeepEqual(second, fresh) {
		t.Fatalf("recomputed results diverged from the fresh run:\n got %+v\nwant %+v", second, fresh)
	}

	if len(logs) != 3 {
		t.Fatalf("logged %d warnings, want 3: %q", len(logs), logs)
	}
	for _, line := range logs {
		if !strings.Contains(line, "invalidating corrupt cache entry") {
			t.Fatalf("unexpected log line: %q", line)
		}
	}
	cachedHits := 0
	for _, p := range points {
		if p.Cached {
			cachedHits++
		}
	}
	if cachedHits != 1 {
		t.Fatalf("%d points served from cache, want exactly the intact one", cachedHits)
	}

	// The corrupt entries were rewritten: a third run is all cache hits
	// and logs nothing.
	logs = nil
	points = nil
	third, err := e2.RunFaultSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third, fresh) {
		t.Fatal("rewritten cache served different results")
	}
	if len(logs) != 0 {
		t.Fatalf("third run still logged warnings: %q", logs)
	}
	for _, p := range points {
		if !p.Cached {
			t.Fatalf("point %d missed the rewritten cache", p.Index)
		}
	}
}
