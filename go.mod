module soteria

go 1.22
