// Network front-end benchmarks: the same write-heavy mix as
// BenchmarkDeviceThroughput pushed through the TCP device service, first
// with the stop-and-wait Client and then with the windowed batching Pipe.
// The pipe/stopwait ratio is the headline number of the wire-speed front
// end (BENCH_10.json); the CI bench gate tracks the absolute ns/op.
package soteria

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// startNetBenchServer boots a fresh sharded device behind a TCP server on a
// loopback port, so every sub-benchmark measures an independent instance.
func startNetBenchServer(b *testing.B) (addr string, stop func()) {
	b.Helper()
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("bench-net-key"),
		Shards: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := devnet.NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		dev.Close()
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		srv.Shutdown()
		<-done
		dev.Close()
	}
}

// netBenchAddr maps op i of connection c to a line-interleaved address
// owned by that connection, mirroring benchDevice's layout so the device
// shards see the same access pattern with and without the network.
func netBenchAddr(c, i, conns int) uint64 {
	const linesPerConn = 1024
	return ((uint64(i)%linesPerConn)*uint64(conns) + uint64(c)) * nvm.LineSize
}

// benchNetStopAndWait drives conns closed-loop clients, one in-flight
// request each — the pre-batching baseline the pipe is measured against.
func benchNetStopAndWait(b *testing.B, conns int) {
	addr, stop := startNetBenchServer(b)
	defer stop()
	clients := make([]*devnet.Client, conns)
	for c := range clients {
		cl, err := devnet.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		clients[c] = cl
	}
	perConn := b.N/conns + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			var line nvm.Line
			for i := 0; i < perConn; i++ {
				a := netBenchAddr(c, i, conns)
				if i%4 == 3 {
					if _, _, err := cl.Read(a); err != nil {
						b.Error(err)
						return
					}
				} else if _, err := cl.Write(a, &line); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// benchNetPipelined drives conns windowed batching pipes through the same
// mix. Acks are consumed by the handler as Submit blocks on a full window;
// Flush drains the tail so every op is acknowledged inside the timed
// region.
func benchNetPipelined(b *testing.B, conns, window, batch int) {
	addr, stop := startNetBenchServer(b)
	defer stop()
	perConn := b.N/conns + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var opErr error
			h := func(tag uint64, op uint8, data *nvm.Line, lat sim.Time, err error) {
				if err != nil && opErr == nil {
					opErr = err
				}
			}
			p, err := devnet.DialPipe(addr, h, devnet.PipeOptions{
				Window:   window,
				MaxBatch: batch,
			})
			if err != nil {
				b.Error(err)
				return
			}
			defer p.Close()
			var line nvm.Line
			for i := 0; i < perConn; i++ {
				a := netBenchAddr(c, i, conns)
				if i%4 == 3 {
					err = p.Submit(0, device.BatchRead, a, nil)
				} else {
					err = p.Submit(0, device.BatchWrite, a, &line)
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
			if err := p.Flush(); err != nil {
				b.Error(err)
				return
			}
			if opErr != nil {
				b.Error(opErr)
			}
		}(c)
	}
	wg.Wait()
}

// BenchmarkNetThroughput is the wire-speed front-end grid: stop-and-wait
// versus pipelined at 1 and 4 connections. Sub-names use key=value parts
// only — a trailing -N would be parsed as a GOMAXPROCS suffix by the
// benchmark tooling.
func BenchmarkNetThroughput(b *testing.B) {
	for _, conns := range []int{1, 4} {
		b.Run(fmt.Sprintf("mode=stopwait/conns=%d", conns), func(b *testing.B) {
			benchNetStopAndWait(b, conns)
		})
	}
	for _, conns := range []int{1, 4} {
		b.Run(fmt.Sprintf("mode=pipe/conns=%d/pipeline=4/batch=32", conns), func(b *testing.B) {
			benchNetPipelined(b, conns, 4, 32)
		})
	}
}
