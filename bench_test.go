// Root-level benchmarks: one per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment at a reduced scale
// and reports the headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// produces a one-screen summary of the reproduction. cmd/experiments runs
// the same code at full scale with printed tables.
package soteria

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/ctrenc"
	"soteria/internal/device"
	"soteria/internal/experiments"
	"soteria/internal/faultsim"
	"soteria/internal/memctrl"
	"soteria/internal/reliability"
	"soteria/internal/runner"
	"soteria/internal/telemetry"
	"soteria/internal/tenant"
)

// benchWorkloads is the representative subset used by the performance
// benchmarks (the full 19-workload sweep runs in cmd/experiments).
var benchWorkloads = []string{"uBENCH128", "hashmap", "tpcc", "mcf"}

func perfParams(b *testing.B) experiments.PerfParams {
	b.Helper()
	p := experiments.DefaultPerfParams()
	p.Ops = 40_000
	p.Warmup = 10_000
	p.Workloads = benchWorkloads
	return p
}

// BenchmarkTable2CloneDepths regenerates Table 2 (SRC/SAC depth tables).
func BenchmarkTable2CloneDepths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if t.NumRows() != 2 {
			b.Fatal("table 2 must have SRC and SAC rows")
		}
	}
}

// BenchmarkTable3SystemConfig regenerates Table 3 and validates it.
func BenchmarkTable3SystemConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := config.Table3().Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4FaultSimConfig regenerates Table 4 and validates it.
func BenchmarkTable4FaultSimConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := config.Table4().DIMM.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ExpectedLoss regenerates Fig 3 (expected loss versus error
// count, 4 TB secure vs non-secure) and reports the amplification factor
// (paper: ~12x).
func BenchmarkFig3ExpectedLoss(b *testing.B) {
	var amp float64
	for i := 0; i < b.N; i++ {
		var err error
		amp, err = reliability.AmplificationFactor(4 << 40)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(amp, "x-amplification")
}

// BenchmarkFig4EvictionLevels regenerates Fig 4 (eviction share per tree
// level under lazy update) and reports the leaf-level share (paper: the
// vast majority of evictions are leaf-level).
func BenchmarkFig4EvictionLevels(b *testing.B) {
	p := perfParams(b)
	var leafShare float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPerf(p)
		if err != nil {
			b.Fatal(err)
		}
		r := res.Get("hashmap", memctrl.ModeSRC)
		leafShare = r.Meta.EvictionsByLevel.Fraction(1)
	}
	b.ReportMetric(leafShare*100, "%leaf-evictions")
}

// BenchmarkFig10aPerformance regenerates Fig 10a (execution-time overhead
// of SRC/SAC over the secure baseline; paper: ~1% / ~1.1%).
func BenchmarkFig10aPerformance(b *testing.B) {
	p := perfParams(b)
	var src, sac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPerf(p)
		if err != nil {
			b.Fatal(err)
		}
		var sSum, aSum float64
		for _, name := range res.Names {
			base := float64(res.Get(name, memctrl.ModeBaseline).ExecTime)
			sSum += float64(res.Get(name, memctrl.ModeSRC).ExecTime) / base
			aSum += float64(res.Get(name, memctrl.ModeSAC).ExecTime) / base
		}
		src = (sSum/float64(len(res.Names)) - 1) * 100
		sac = (aSum/float64(len(res.Names)) - 1) * 100
	}
	b.ReportMetric(src, "%src-overhead")
	b.ReportMetric(sac, "%sac-overhead")
}

// BenchmarkFig10bWrites regenerates Fig 10b (NVM write overhead; paper:
// ~4.3% SRC / ~4.4% SAC).
func BenchmarkFig10bWrites(b *testing.B) {
	p := perfParams(b)
	var src, sac float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPerf(p)
		if err != nil {
			b.Fatal(err)
		}
		var sSum, aSum float64
		var n int
		for _, name := range res.Names {
			bw := float64(res.Get(name, memctrl.ModeBaseline).Ctrl.TotalNVMWrites())
			if bw == 0 {
				continue // cache-resident in this window; no ratio
			}
			sSum += float64(res.Get(name, memctrl.ModeSRC).Ctrl.TotalNVMWrites()) / bw
			aSum += float64(res.Get(name, memctrl.ModeSAC).Ctrl.TotalNVMWrites()) / bw
			n++
		}
		src = (sSum/float64(n) - 1) * 100
		sac = (aSum/float64(n) - 1) * 100
	}
	b.ReportMetric(src, "%src-writes")
	b.ReportMetric(sac, "%sac-writes")
}

// BenchmarkFig10cEvictionRate regenerates Fig 10c (metadata-cache dirty
// evictions per memory operation; paper: ~1.3% average).
func BenchmarkFig10cEvictionRate(b *testing.B) {
	p := perfParams(b)
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPerf(p)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, name := range res.Names {
			r := res.Get(name, memctrl.ModeSRC)
			sum += float64(r.Meta.DirtyTreeEvictions) / float64(r.MemOps)
		}
		rate = sum / float64(len(res.Names)) * 100
	}
	b.ReportMetric(rate, "%evictions/op")
}

// BenchmarkFig11UDR regenerates a reduced Fig 11 point (UDR at FIT 80 under
// Chipkill for baseline/SRC/SAC; paper: 3e-5 / 2.66e-8 / 1.5e-9).
func BenchmarkFig11UDR(b *testing.B) {
	p := experiments.DefaultRelParams()
	p.Trials = 20_000
	p.FITs = []float64{80}
	var base, src, sac float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(p)
		if err != nil {
			b.Fatal(err)
		}
		base, src, sac = r.UDRs["baseline"][0], r.UDRs["SRC"][0], r.UDRs["SAC"][0]
	}
	b.ReportMetric(base*1e9, "baseline-UDR-e9")
	b.ReportMetric(src*1e9, "src-UDR-e9")
	b.ReportMetric(sac*1e9, "sac-UDR-e9")
}

// BenchmarkFaultSweepRunner measures the parallel experiment engine on a
// reduced multi-point FIT sweep — the workload behind Fig 11 — and reports
// sustained trial throughput. This is the number the runner's block
// scheduling and buffer reuse are meant to move; refresh the baseline in
// EXPERIMENTS.md when it shifts.
func BenchmarkFaultSweepRunner(b *testing.B) {
	cfg := config.Table4()
	schemes := make([]*faultsim.Scheme, 0, 3)
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := faultsim.BuildScheme(cfg.DIMM, pol, 8192)
		if err != nil {
			b.Fatal(err)
		}
		schemes = append(schemes, s)
	}
	sweep := runner.FaultSweep{
		Config: cfg, FITs: []float64{20, 80}, Trials: 5_000, Seed: 42,
		Conditional: true, Schemes: schemes, Label: "bench",
	}
	eng := runner.New(runner.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eng.RunFaultSweep(sweep)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 2 {
			b.Fatal("sweep dropped a FIT point")
		}
	}
	trials := float64(sweep.Trials * len(sweep.FITs))
	b.ReportMetric(trials*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkFig12DataLoss regenerates Fig 12 (loss split for an 8 TB memory)
// at a reduced trial count.
func BenchmarkFig12DataLoss(b *testing.B) {
	p := experiments.DefaultRelParams()
	p.Trials = 20_000
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig12(p, 80, 8<<40)
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 4 {
			b.Fatal("Fig 12 must compare four schemes")
		}
	}
}

// BenchmarkMTBF regenerates the §4 MTBF sanity check (paper: 694 h at FIT 1
// to 8.6 h at FIT 80).
func BenchmarkMTBF(b *testing.B) {
	var m float64
	for i := 0; i < b.N; i++ {
		var err error
		m, err = reliability.SystemMTBF(80, reliability.PaperClusterNodes,
			reliability.PaperClusterDIMMs, reliability.PaperClusterChips)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m, "hours-at-FIT80")
}

// BenchmarkAblationEagerLazy regenerates the lazy-vs-eager tree-update
// ablation (§2.5's "extreme slowdown" argument) and reports the slowdown.
func BenchmarkAblationEagerLazy(b *testing.B) {
	p := experiments.DefaultPerfParams()
	p.Ops, p.Warmup = 15_000, 5_000
	p.Workloads = []string{"hashmap"}
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationEagerLazy(p)
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 1 {
			b.Fatal("ablation row missing")
		}
	}
}

// BenchmarkAblationCloneDepth regenerates the uniform clone-depth sweep
// (cost/benefit behind Table 2's SAC shape).
func BenchmarkAblationCloneDepth(b *testing.B) {
	p := experiments.DefaultPerfParams()
	p.Ops, p.Warmup = 10_000, 2_000
	rel := experiments.DefaultRelParams()
	rel.Trials = 5_000
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCloneDepth(p, rel, 80)
		if err != nil {
			b.Fatal(err)
		}
		if t.NumRows() != 5 {
			b.Fatal("depth rows missing")
		}
	}
}

// benchReadHit measures the secure read path with warm metadata (the
// steady-state datapath cost), optionally with a telemetry registry
// attached. Comparing the two variants bounds the enabled-telemetry cost;
// the unattached one is the baseline the <5%-overhead acceptance check
// tracks (detached handles are single nil checks).
func benchReadHit(b *testing.B, attach bool) {
	ctrl, err := memctrl.New(config.TestSystem(), memctrl.ModeSRC, []byte("b"), memctrl.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if attach {
		ctrl.AttachTelemetry(telemetry.NewRegistry())
	}
	var line [64]byte
	now, err := ctrl.WriteBlock(0, 0, &line)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, now, err = ctrl.ReadBlock(now, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerReadHit is the telemetry-detached read path.
func BenchmarkControllerReadHit(b *testing.B) { benchReadHit(b, false) }

// BenchmarkControllerReadHitTelemetry is the same path with every counter
// and span live.
func BenchmarkControllerReadHitTelemetry(b *testing.B) { benchReadHit(b, true) }

// benchWrite measures the secure write path (encrypt + MAC + shadow log +
// WPQ), optionally with telemetry attached.
func benchWrite(b *testing.B, attach bool) {
	ctrl, err := memctrl.New(config.TestSystem(), memctrl.ModeSAC, []byte("b"), memctrl.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if attach {
		ctrl.AttachTelemetry(telemetry.NewRegistry())
	}
	var line [64]byte
	var now = ctrl.DrainWPQ(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%1024) * 64
		var err error
		if now, err = ctrl.WriteBlock(now, addr, &line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerWrite is the telemetry-detached write path.
func BenchmarkControllerWrite(b *testing.B) { benchWrite(b, false) }

// BenchmarkControllerWriteTelemetry is the same path with every counter
// and span live.
func BenchmarkControllerWriteTelemetry(b *testing.B) { benchWrite(b, true) }

// benchSink keeps hot-path micro-benchmark results observable so the
// compiler cannot elide the measured work.
var benchSink uint64

// BenchmarkMAC measures one keyed 64-bit MAC over a 64-byte line — the
// single most frequent operation in the controller (data MACs, node MACs,
// shadow MACs all land here). The CI bench-compare step gates on it.
func BenchmarkMAC(b *testing.B) {
	eng := ctrenc.MustNewEngine([]byte("bench-mac-key"))
	var line [64]byte
	for i := range line {
		line[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = eng.MAC(ctrenc.DomainData, uint64(i), 42, line[:])
	}
}

// BenchmarkCounterBlockRoundTrip measures the split-counter block codec
// (serialize + deserialize), the per-metadata-writeback serialization cost.
func BenchmarkCounterBlockRoundTrip(b *testing.B) {
	var cb ctrenc.CounterBlock
	cb.Major = 12345
	for i := range cb.Minors {
		cb.Minors[i] = uint8(i % 63)
	}
	cb.MAC = 0xDEADBEEF
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := cb.Serialize()
		out := ctrenc.DeserializeCounterBlock(&line)
		benchSink = out.Major
	}
}

// benchSteadyState measures the warm-cache secure datapath under a 3:1
// write:read mix over a 512-block working set — the steady-state regime of
// cmd/experiments and the device service — for one metadata-persistence
// strategy ("" = default).
func benchSteadyState(b *testing.B, strategy string) {
	ctrl, err := memctrl.New(config.TestSystem(), memctrl.ModeSRC, []byte("b"), memctrl.Options{Strategy: strategy})
	if err != nil {
		b.Fatal(err)
	}
	var line [64]byte
	now := ctrl.DrainWPQ(0)
	for i := 0; i < 512; i++ {
		if now, err = ctrl.WriteBlock(now, uint64(i)*64, &line); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%512) * 64
		if i%4 == 3 {
			if _, now, err = ctrl.ReadBlock(now, addr); err != nil {
				b.Fatal(err)
			}
		} else if now, err = ctrl.WriteBlock(now, addr, &line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerSteadyState is the default-strategy steady state. The
// CI bench-compare step gates on it.
func BenchmarkControllerSteadyState(b *testing.B) {
	benchSteadyState(b, "")
}

// BenchmarkControllerSteadyStateScheme runs the same steady-state regime
// once per registered metadata-persistence strategy, so the cost of each
// scheme's persistence hooks shows up side by side in the CI bench
// artifact. Dashes in strategy names become underscores: a bench name
// ending in "-2" would be mis-parsed as a GOMAXPROCS suffix by the
// benchmark tooling.
func BenchmarkControllerSteadyStateScheme(b *testing.B) {
	for _, name := range memctrl.Strategies() {
		sub := "strategy=" + strings.ReplaceAll(name, "-", "_")
		b.Run(sub, func(b *testing.B) { benchSteadyState(b, name) })
	}
}

// benchDevice measures the sharded device service end to end: one
// closed-loop goroutine per shard issuing a write-heavy mix through the
// full submit/batch/worker path. Scaling from 1 to 8 shards shows how
// much concurrency the sharding actually buys at the device surface.
func benchDevice(b *testing.B, shards int) {
	dev, err := device.New(device.Options{
		System: config.TestSystem(),
		Mode:   memctrl.ModeSRC,
		Key:    []byte("bench-device-key"),
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dev.Close()
	info := dev.Info()
	linesPerShard := info.CapacityBytes / 64 / uint64(shards)
	if linesPerShard > 1024 {
		linesPerShard = 1024
	}
	perShard := b.N/shards + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var line [64]byte
			for i := 0; i < perShard; i++ {
				// Global line-interleaved address owned by shard s.
				addr := ((uint64(i)%linesPerShard)*uint64(shards) + uint64(s)) * 64
				if i%4 == 3 {
					if _, _, err := dev.Read(addr); err != nil {
						b.Error(err)
						return
					}
				} else if _, err := dev.Write(addr, &line); err != nil {
					b.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
}

// BenchmarkDeviceThroughput is the device-layer smoke benchmark the CI
// bench artifact tracks across 1, 4 and 8 shards.
func BenchmarkDeviceThroughput(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		// "shards=N", not "shards-N": a trailing -N would be parsed as the
		// GOMAXPROCS suffix by benchparse and collapse the three names.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchDevice(b, shards)
		})
	}
}

// benchTenants measures the multi-tenant secure-memory service end to
// end: closed-loop round-robin over the tenants through admission, the
// per-tenant key domain (seal + MAC + guard protocol) and the
// engine-hosted device underneath. Scaling 1 -> 16 tenants shows what the
// tenant layer costs on top of BenchmarkDeviceThroughput (key-domain
// switching, guard-cache pressure) at even load, where fair-share
// admission never throttles.
func benchTenants(b *testing.B, tenants int) {
	eng, err := device.NewEngine(device.EngineOptions{
		Options: device.Options{
			System:     config.TestSystem(),
			Mode:       memctrl.ModeSRC,
			Key:        []byte("bench-device-key"),
			Shards:     4,
			QueueDepth: 16,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	svc, err := tenant.New(eng, tenant.Options{MasterKey: []byte("bench-tenant-master")})
	if err != nil {
		b.Fatal(err)
	}
	const lines = 256
	for id := 1; id <= tenants; id++ {
		if _, err := svc.Provision(uint32(id), lines, 0); err != nil {
			b.Fatal(err)
		}
	}
	var line [64]byte
	// Warm the guard caches so the timed loop measures steady state.
	// Round-robin like the timed loop: even load never trips the
	// fair-share throttle, a single tenant bursting a whole extent would.
	for l := uint64(0); l < lines; l++ {
		for id := 1; id <= tenants; id++ {
			if _, err := svc.Write(uint32(id), l*64, &line); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint32(1 + i%tenants)
		addr := (uint64(i/tenants) % lines) * 64
		if i%4 == 3 {
			if _, _, err := svc.Read(id, addr); err != nil {
				b.Fatal(err)
			}
		} else if _, err := svc.Write(id, addr, &line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceThroughputTenants is the tenant-layer companion the CI
// bench gate tracks across 1, 4 and 16 tenants. The single-tenant
// steady-state path is additionally pinned allocation-free by
// internal/tenant's TestSingleTenantSteadyStateZeroAllocs.
func BenchmarkDeviceThroughputTenants(b *testing.B) {
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			benchTenants(b, tenants)
		})
	}
}
