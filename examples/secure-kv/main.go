// secure-kv: a small persistent key-value store built on the Soteria
// controller's public API — the kind of downstream adoption the library
// targets. Records live in encrypted, integrity-protected, crash-recoverable
// NVM; the store itself needs no cryptography, no journals for the security
// metadata, and survives both power loss and injected NVM faults.
//
//	go run ./examples/secure-kv
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

// KV is a fixed-capacity open-addressing hash table over 64-byte slots:
// 16-byte key, 40-byte value, 8-byte tag. One slot = one NVM line = one
// atomic, encrypted, verified write.
type KV struct {
	ctrl  *memctrl.Controller
	now   sim.Time
	slots uint64
}

const (
	keyLen = 16
	valLen = 40
)

// NewKV creates a store with the given slot count (power of two).
func NewKV(ctrl *memctrl.Controller, slots uint64) *KV {
	return &KV{ctrl: ctrl, slots: slots}
}

func (kv *KV) slotAddr(i uint64) uint64 { return i * nvm.LineSize }

func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

func encodeSlot(key, val []byte) nvm.Line {
	var l nvm.Line
	copy(l[0:keyLen], key)
	copy(l[keyLen:keyLen+valLen], val)
	binary.LittleEndian.PutUint64(l[keyLen+valLen:], hashKey(key)|1) // tag: nonzero = occupied
	return l
}

// Put inserts or updates a key (<=16 bytes) with a value (<=40 bytes).
func (kv *KV) Put(key, val string) error {
	if len(key) > keyLen || len(val) > valLen {
		return fmt.Errorf("kv: key/value too large")
	}
	k := make([]byte, keyLen)
	copy(k, key)
	h := hashKey(k)
	for probe := uint64(0); probe < kv.slots; probe++ {
		i := (h + probe) % kv.slots
		line, now, err := kv.ctrl.ReadBlock(kv.now, kv.slotAddr(i))
		if err != nil {
			return err
		}
		kv.now = now
		tag := binary.LittleEndian.Uint64(line[keyLen+valLen:])
		if tag != 0 && string(line[0:keyLen]) != string(k) {
			continue // occupied by another key
		}
		slot := encodeSlot(k, []byte(val))
		if kv.now, err = kv.ctrl.WriteBlock(kv.now, kv.slotAddr(i), &slot); err != nil {
			return err
		}
		// Durability point: drain the write queue (sfence).
		kv.now = kv.ctrl.DrainWPQ(kv.now)
		return nil
	}
	return fmt.Errorf("kv: table full")
}

// Get fetches a key's value; ok=false when absent.
func (kv *KV) Get(key string) (string, bool, error) {
	k := make([]byte, keyLen)
	copy(k, key)
	h := hashKey(k)
	for probe := uint64(0); probe < kv.slots; probe++ {
		i := (h + probe) % kv.slots
		line, now, err := kv.ctrl.ReadBlock(kv.now, kv.slotAddr(i))
		if err != nil {
			return "", false, err
		}
		kv.now = now
		tag := binary.LittleEndian.Uint64(line[keyLen+valLen:])
		if tag == 0 {
			return "", false, nil // open slot: key absent
		}
		if string(line[0:keyLen]) == string(k) {
			val := line[keyLen : keyLen+valLen]
			n := len(val)
			for n > 0 && val[n-1] == 0 {
				n--
			}
			return string(val[:n]), true, nil
		}
	}
	return "", false, nil
}

func main() {
	ctrl, err := memctrl.New(config.TestSystem(), memctrl.ModeSAC, []byte("kv-master-key"), memctrl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	kv := NewKV(ctrl, 1<<12)

	// Populate.
	users := map[string]string{
		"alice": "ed25519:4f2a...", "bob": "ed25519:99c1...",
		"carol": "rsa4096:17ab...", "dave": "ed25519:b0d2...",
	}
	for k, v := range users {
		if err := kv.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d records (encrypted + integrity-protected at rest)\n", len(users))

	// Power loss mid-run; the store needs no recovery logic of its own.
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	if _, err := ctrl.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("power loss -> controller recovery complete")

	for k, want := range users {
		got, ok, err := kv.Get(k)
		if err != nil || !ok || got != want {
			log.Fatalf("record %q damaged after crash: %q %v %v", k, got, ok, err)
		}
	}
	fmt.Println("all records intact and verified")

	// NVM faults land in every written counter block's home copy while
	// the machine is off; SAC's clones absorb them transparently on
	// reboot.
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	lay := ctrl.Layout()
	for i := uint64(0); i < lay.Levels[0].Nodes; i++ {
		if ctrl.Device().Materialized(lay.NodeAddr(1, i)) {
			ctrl.Device().CorruptLine(lay.NodeAddr(1, i))
		}
	}
	if _, err := ctrl.Recover(); err != nil {
		log.Fatal(err)
	}
	for k, want := range users {
		got, ok, err := kv.Get(k)
		if err != nil || !ok || got != want {
			log.Fatalf("fault not absorbed for %q: %v", k, err)
		}
	}
	fmt.Printf("metadata faults absorbed across reboot (clone repairs: %d)\n", ctrl.FaultStats().Repairs)

	// Updates stay fresh (no replay of old values is possible).
	if err := kv.Put("alice", "ed25519:rotated"); err != nil {
		log.Fatal(err)
	}
	got, _, err := kv.Get("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key rotation persisted: alice -> %s\n", got)
}
