// Quickstart: stand up a Soteria-protected NVM, write and read encrypted,
// integrity-verified data, survive a power loss, and inspect the
// controller's books.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func main() {
	// A scaled-down system configuration (4 MB NVM) so the example runs
	// instantly; config.Table3() gives the paper's full 16 GB setup.
	cfg := config.TestSystem()

	// ModeSRC = Soteria Relaxed Cloning: every security-metadata node
	// keeps one lazily written clone.
	ctrl, err := memctrl.New(cfg, memctrl.ModeSRC, []byte("quickstart-key"), memctrl.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Write a few cache lines. The controller encrypts with AES counter
	// mode, persists a MAC per block, updates the split counters and
	// logs Anubis shadow entries — all through the ADR write queue.
	var now sim.Time
	for i := 0; i < 16; i++ {
		var line nvm.Line
		copy(line[:], fmt.Sprintf("persistent record #%02d", i))
		addr := uint64(i) * 4096
		if now, err = ctrl.WriteBlock(now, addr, &line); err != nil {
			log.Fatal(err)
		}
	}

	// Reads decrypt and verify the MAC chain up to the on-chip root.
	data, now, err := ctrl.ReadBlock(now, 5*4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", data[:22])

	// The NVM itself only ever sees ciphertext.
	raw := ctrl.Device().ReadRaw(5 * 4096)
	fmt.Printf("at rest:   %x...\n", raw[:22])

	// Power loss: all volatile state (metadata cache, shadow mirror)
	// vanishes. The WPQ contents and two on-chip root registers survive.
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	rep, err := ctrl.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d tracked metadata blocks (%d lost)\n",
		rep.RecoveredBlocks, len(rep.LostSlots)+len(rep.FailedBlocks))

	// Everything is still there and still verifies.
	data, now, err = ctrl.ReadBlock(now, 5*4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %q\n", data[:22])
	if err := ctrl.VerifyAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("full NVM image verifies against the on-chip root")

	s := ctrl.Stats()
	fmt.Printf("\nNVM writes: data=%d mac=%d shadow=%d metadata=%d clones=%d\n",
		s.NVMWrites[memctrl.WCData], s.NVMWrites[memctrl.WCDataMAC],
		s.NVMWrites[memctrl.WCShadow], s.NVMWrites[memctrl.WCMetadata],
		s.NVMWrites[memctrl.WCClone])
	fmt.Printf("simulated time: %v\n", now.Duration())
}
