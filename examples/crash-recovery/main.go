// Crash recovery: run a persistent key-value workload through the cache
// hierarchy, cut the power at an arbitrary point with dirty security
// metadata on chip, and recover via Anubis shadow tracking + Osiris counter
// trials — then prove every record survived and the whole image verifies.
//
//	go run ./examples/crash-recovery
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

const records = 500

func recordLine(i int, generation uint64) nvm.Line {
	var l nvm.Line
	binary.LittleEndian.PutUint64(l[0:8], uint64(i))
	binary.LittleEndian.PutUint64(l[8:16], generation)
	copy(l[16:], fmt.Sprintf("value-%d-gen-%d", i, generation))
	return l
}

func main() {
	cfg := config.TestSystem()
	ctrl, err := memctrl.New(cfg, memctrl.ModeSAC, []byte("kv"), memctrl.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: populate the store, several generations deep so counters
	// advance well past their NVM copies.
	var now sim.Time
	gen := uint64(0)
	for ; gen < 3; gen++ {
		for i := 0; i < records; i++ {
			l := recordLine(i, gen)
			if now, err = ctrl.WriteBlock(now, uint64(i)*64, &l); err != nil {
				log.Fatal(err)
			}
		}
	}
	gen-- // last completed generation

	fmt.Printf("wrote %d records x %d generations (%v simulated)\n", records, gen+1, now.Duration())

	// Phase 2: power loss. Volatile metadata cache and shadow mirror are
	// gone; the ADR domain (WPQ, root registers) survives.
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	fmt.Println("power lost: metadata cache dropped with dirty counters on chip")

	// Phase 3: recovery. The shadow table identifies every tracked
	// block; node counters come back from their 16-bit LSBs, leaf minors
	// from Osiris trials against the persisted data MACs.
	rep, err := ctrl.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d shadow entries, %d blocks reconstructed, %d lost slots, %d failed\n",
		rep.TrackedEntries, rep.RecoveredBlocks, len(rep.LostSlots), len(rep.FailedBlocks))

	// Phase 4: audit. Every record must decrypt, verify, and carry the
	// last completed generation.
	for i := 0; i < records; i++ {
		data, nn, err := ctrl.ReadBlock(now, uint64(i)*64)
		if err != nil {
			log.Fatalf("record %d unreadable after recovery: %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(data[8:16]); got != gen {
			log.Fatalf("record %d has generation %d, want %d", i, got, gen)
		}
		now = nn
	}
	now = ctrl.FlushAll(now)
	if err := ctrl.VerifyAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d records intact at generation %d; full image verifies\n", records, gen)
}
