// Fault injection: plant uncorrectable NVM errors in security metadata and
// compare the blast radius with and without Soteria — the functional
// counterpart of the paper's Fig 9 fault-handling pipeline and the UDR
// metric of §5.3.
//
//	go run ./examples/fault-injection
package main

import (
	"errors"
	"fmt"
	"log"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func main() {
	fmt.Println("=== secure baseline: one dead tree node strands a region ===")
	baseline := build(memctrl.ModeBaseline)
	demoBaseline(baseline)

	fmt.Println("\n=== Soteria SRC: the same fault is repaired from a clone ===")
	src := build(memctrl.ModeSRC)
	demoSoteria(src)

	fmt.Println("\n=== Soteria under attrition: all copies dead -> UDR accounting ===")
	demoTotalLoss(build(memctrl.ModeSRC))

	fmt.Println("\n=== shadow-entry codeword death during recovery ===")
	demoShadowRepair()
}

func build(mode memctrl.Mode) *memctrl.Controller {
	ctrl, err := memctrl.New(config.TestSystem(), mode, []byte("fi"), memctrl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return ctrl
}

// populate writes a block in each of the first n counter-block regions and
// flushes so the tree is fully materialized in NVM.
func populate(ctrl *memctrl.Controller, n int) sim.Time {
	var now sim.Time
	var err error
	for i := 0; i < n; i++ {
		var l nvm.Line
		l[0] = byte(i)
		if now, err = ctrl.WriteBlock(now, uint64(i)*4096, &l); err != nil {
			log.Fatal(err)
		}
	}
	now = ctrl.FlushAll(now)
	// Drop cached (trusted) copies so subsequent reads must verify NVM.
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	if _, err := ctrl.Recover(); err != nil {
		log.Fatal(err)
	}
	return now
}

func demoBaseline(ctrl *memctrl.Controller) {
	now := populate(ctrl, 16)
	lay := ctrl.Layout()
	// Kill the L2 node covering the first 8 counter blocks (32 kB of
	// data): every word uncorrectable.
	ctrl.Device().CorruptLine(lay.NodeAddr(2, 0))
	_, _, err := ctrl.ReadBlock(now, 0)
	if !errors.Is(err, memctrl.ErrUnverifiable) {
		log.Fatalf("expected unverifiable, got %v", err)
	}
	fs := ctrl.FaultStats()
	fmt.Printf("one uncorrectable L2 node -> %d bytes unverifiable (UDR %.2e)\n",
		fs.UnverifiableBytes, fs.UDR(lay.DataBytes))
}

func demoSoteria(ctrl *memctrl.Controller) {
	now := populate(ctrl, 16)
	lay := ctrl.Layout()
	ctrl.Device().CorruptLine(lay.NodeAddr(2, 0))
	data, _, err := ctrl.ReadBlock(now, 0)
	if err != nil {
		log.Fatalf("SRC failed to absorb the fault: %v", err)
	}
	fs := ctrl.FaultStats()
	fmt.Printf("same fault absorbed: data[0]=%d, repairs=%d, unverifiable bytes=%d\n",
		data[0], fs.Repairs, fs.UnverifiableBytes)
	// The purify step rewrote the home copy.
	if r := ctrl.Device().Read(lay.NodeAddr(2, 0)); r.Uncorrectable {
		log.Fatal("home copy was not purified")
	}
	fmt.Println("home copy purified in place (Fig 9 step 7)")
}

func demoTotalLoss(ctrl *memctrl.Controller) {
	now := populate(ctrl, 16)
	lay := ctrl.Layout()
	for _, a := range lay.CopyAddrs(1, 0) {
		ctrl.Device().CorruptLine(a)
	}
	_, _, err := ctrl.ReadBlock(now, 0)
	if !errors.Is(err, memctrl.ErrUnverifiable) {
		log.Fatalf("expected unverifiable, got %v", err)
	}
	fs := ctrl.FaultStats()
	fmt.Printf("all %d copies dead -> %d bytes unverifiable; neighbouring regions unaffected:\n",
		len(lay.CopyAddrs(1, 0)), fs.UnverifiableBytes)
	if _, _, err := ctrl.ReadBlock(now, 4096); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  block under counter block 1 still reads fine")
}

func demoShadowRepair() {
	ctrl := build(memctrl.ModeSRC)
	var now sim.Time
	var err error
	var l nvm.Line
	l[0] = 0x55
	if now, err = ctrl.WriteBlock(now, 0, &l); err != nil {
		log.Fatal(err)
	}
	_ = now
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	// Kill one ECC codeword in every occupied shadow entry; the Soteria
	// duplicate half (Fig 8b) restores each one.
	lay := ctrl.Layout()
	for s := uint64(0); s < lay.ShadowEntries; s++ {
		addr := lay.ShadowEntryAddr(s)
		if ctrl.Device().ReadRaw(addr) != (nvm.Line{}) {
			ctrl.Device().CorruptWord(addr, 2)
		}
	}
	rep, err := ctrl.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery with damaged shadow region: %d half-repairs, %d lost slots, %d blocks recovered\n",
		rep.HalfRepairs, len(rep.LostSlots), rep.RecoveredBlocks)
	if err := ctrl.VerifyAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("image verifies after shadow-entry repair")
}
