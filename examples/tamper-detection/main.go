// Tamper detection: play the attacker from the paper's threat model (§2.1)
// against the secure controller — snoop-and-modify, data replay, and the
// strongest metadata replay (overwriting *every* clone of a tree node) —
// and watch each attempt get caught.
//
//	go run ./examples/tamper-detection
package main

import (
	"errors"
	"fmt"
	"log"

	"soteria/internal/config"
	"soteria/internal/memctrl"
	"soteria/internal/nvm"
	"soteria/internal/sim"
)

func main() {
	cfg := config.TestSystem()
	ctrl, err := memctrl.New(cfg, memctrl.ModeSRC, []byte("k"), memctrl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dev := ctrl.Device()
	lay := ctrl.Layout()
	var now sim.Time

	var secret nvm.Line
	copy(secret[:], "attack at dawn")
	if now, err = ctrl.WriteBlock(now, 0, &secret); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== attack 1: flip a ciphertext bit (bus/array tamper) ===")
	ct := dev.ReadRaw(0)
	ct[3] ^= 0x01
	dev.Write(0, &ct)
	_, now, err = ctrl.ReadBlock(now, 0)
	report(err, memctrl.ErrMACMismatch)
	ct[3] ^= 0x01 // restore for the next act
	dev.Write(0, &ct)

	fmt.Println("\n=== attack 2: replay old data + old MAC (counter replay) ===")
	oldCT := dev.ReadRaw(0)
	macLine, _ := lay.DataMACAddr(0)
	oldMAC := dev.ReadRaw(macLine)
	var v2 nvm.Line
	copy(v2[:], "retreat at dusk")
	if now, err = ctrl.WriteBlock(now, 0, &v2); err != nil {
		log.Fatal(err)
	}
	dev.Write(0, &oldCT)
	dev.Write(macLine, &oldMAC)
	_, now, err = ctrl.ReadBlock(now, 0)
	report(err, memctrl.ErrMACMismatch)

	fmt.Println("\n=== attack 3: replay one stale copy of a tree node ===")
	// Restore a clean state first.
	if now, err = ctrl.WriteBlock(now, 0, &v2); err != nil {
		log.Fatal(err)
	}
	now = ctrl.FlushAll(now)
	leafHome := lay.NodeAddr(1, 0)
	stale := dev.ReadRaw(leafHome)
	// Advance the tree legitimately, flush, then replay the stale home
	// copy only. Soteria's fault handler treats the lone stale copy as a
	// fault and *repairs it from the clone* (§3.2.2).
	if now, err = ctrl.WriteBlock(now, 0, &secret); err != nil {
		log.Fatal(err)
	}
	now = ctrl.FlushAll(now)
	dropVolatile(ctrl)
	dev.Write(leafHome, &stale)
	_, now, err = ctrl.ReadBlock(now, 0)
	if err != nil {
		log.Fatalf("single-copy replay should be absorbed by the clone, got %v", err)
	}
	fmt.Printf("detected and repaired from clone: repairs=%d\n", ctrl.FaultStats().Repairs)

	fmt.Println("\n=== attack 4: replay *all* copies of the node ===")
	staleClone := stale
	if now, err = ctrl.WriteBlock(now, 0, &v2); err != nil {
		log.Fatal(err)
	}
	now = ctrl.FlushAll(now)
	dropVolatile(ctrl)
	dev.Write(leafHome, &stale)
	dev.Write(lay.CloneAddr(1, 0, 0), &staleClone)
	_, _, err = ctrl.ReadBlock(now, 0)
	report(err, memctrl.ErrTamper)
	fmt.Printf("tamper detections: %d\n", ctrl.FaultStats().TamperDetections)
}

// dropVolatile empties the metadata cache so the next access re-reads NVM
// (models an attacker waiting for cold state).
func dropVolatile(ctrl *memctrl.Controller) {
	if err := ctrl.Crash(); err != nil {
		log.Fatalf("crash: %v", err)
	}
	if _, err := ctrl.Recover(); err != nil {
		log.Fatal(err)
	}
}

func report(err, want error) {
	switch {
	case err == nil:
		log.Fatal("ATTACK SUCCEEDED — this must never print")
	case errors.Is(err, want):
		fmt.Printf("detected: %v\n", err)
	default:
		fmt.Printf("detected (as %v)\n", err)
	}
}
