// Package soteria is a from-scratch Go reproduction of "Soteria: Towards
// Resilient Integrity-Protected and Encrypted Non-Volatile Memories"
// (Zubair, Gurumurthi, Sridharan, Awad — MICRO 2021).
//
// The repository contains a byte-accurate secure NVM memory controller
// (AES counter-mode encryption with split counters, an SGX-style Tree of
// Counters with lazy updates, Anubis shadow tracking, Osiris counter
// recovery, and Soteria's metadata cloning), a trace-driven performance
// model, and a FaultSim-style Monte Carlo reliability simulator — enough to
// regenerate every table and figure of the paper's evaluation. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
//
// The root-level benchmarks (bench_test.go) regenerate each experiment:
//
//	go test -bench=Fig11 -benchtime 1x .
package soteria
