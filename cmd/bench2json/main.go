// Command bench2json converts `go test -bench` text output into a JSON
// artifact, so CI can archive benchmark smoke runs (BENCH_*.json) and
// baselines stay diffable across commits.
//
// Usage:
//
//	go test -bench=. -benchtime=1x . | go run ./cmd/bench2json -out BENCH_smoke.json
//	go run ./cmd/bench2json -in bench.txt -out BENCH_smoke.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"soteria/internal/benchparse"
)

func main() {
	var (
		in  = flag.String("in", "", "benchmark text to parse (empty = stdin)")
		out = flag.String("out", "", "JSON file to write (empty = stdout)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := benchparse.Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}
