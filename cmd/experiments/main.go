// Command experiments regenerates the tables and figures of the Soteria
// paper's evaluation from the simulators in this repository.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig11 -trials 500000
//	experiments -run fig10a -ops 500000 -footprint 268435456
//
// Experiments: table2 table3 table4 fig3 fig4 fig10a fig10b fig10c fig11
// fig12 mtbf all (perf = fig4+fig10a/b/c in one sweep).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"soteria/internal/experiments"
	"soteria/internal/runner"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
	"soteria/internal/workload"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment to run (comma-separated): table2,table3,table4,fig3,fig4,fig10a,fig10b,fig10c,fig11,fig12,mtbf,perf,schemes,tenants,all (schemes and tenants are not part of all)")
		ops       = flag.Uint64("ops", 150_000, "measured memory operations per workload (performance experiments)")
		warmup    = flag.Uint64("warmup", 30_000, "warm-up memory operations per workload")
		footprint = flag.Uint64("footprint", 64<<20, "workload data footprint in bytes")
		metaKB    = flag.Int("metacache", 128, "metadata cache size in KB (0 = Table 3's 512 kB; use with paper-scale -ops)")
		llcKB     = flag.Int("llc", 1024, "LLC size in KB (0 = Table 3's 8 MB; use with paper-scale -ops)")
		trials    = flag.Int("trials", 120_000, "Monte Carlo trials per FIT point (reliability experiments)")
		fit       = flag.Float64("fit", 40, "FIT/chip for Fig 12")
		seed      = flag.Int64("seed", 1, "random seed")
		wls       = flag.String("workloads", "", "comma-separated workload filter for the performance sweep (empty = all)")
		csv       = flag.Bool("csv", false, "emit CSV instead of markdown")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all CPUs; results identical for any value)")
		cacheDir  = flag.String("cache", "", "Monte Carlo result cache directory (empty = no caching)")
		progress  = flag.Bool("progress", false, "report sweep progress on stderr")
		metrics   = flag.String("metrics", "", "write merged telemetry snapshot of all experiments to file (.prom = Prometheus text, else JSON, - = stdout)")
		cpuprof   = flag.String("pprof", "", "write a CPU profile of the run to file")
	)
	flag.Parse()

	if *cpuprof != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	// merged accumulates telemetry across every experiment that runs:
	// Monte Carlo sweep points arrive through the runner's OnPoint hook,
	// performance sweeps through PerfResults.Telemetry. Each source merges
	// in a fixed order, so the combined snapshot is deterministic.
	var merged *telemetry.Snapshot
	var onPoint func(runner.Point)
	if *metrics != "" {
		merged = &telemetry.Snapshot{}
		onPoint = func(p runner.Point) { merged.Merge(p.Result.Telemetry) }
	}

	var onProgress func(runner.Progress)
	if *progress {
		onProgress = runner.WriteProgress(os.Stderr)
	}
	logf := func(format string, args ...interface{}) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	relParams := func() experiments.RelParams {
		p := experiments.DefaultRelParams()
		p.Trials, p.Seed = *trials, *seed
		p.Workers, p.CacheDir, p.Progress = *workers, *cacheDir, onProgress
		p.OnPoint = onPoint
		p.Logf = logf
		return p
	}

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(r))] = true
	}
	all := want["all"]
	emit := func(t *stats.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteMarkdown(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
	}

	if all || want["table3"] {
		emit(experiments.Table3())
	}
	if all || want["table4"] {
		emit(experiments.Table4())
	}
	if all || want["table2"] {
		emit(experiments.Table2())
	}
	if all || want["fig3"] {
		t, err := experiments.Fig3(4<<40, 10)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}
	if all || want["mtbf"] {
		t, err := experiments.MTBFTable(nil)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}

	needPerf := all || want["perf"] || want["fig4"] || want["fig10a"] || want["fig10b"] || want["fig10c"] || want["metamiss"]
	if needPerf {
		p := experiments.DefaultPerfParams()
		p.Ops, p.Warmup, p.Footprint, p.Seed = *ops, *warmup, *footprint, *seed
		if *wls != "" {
			for _, n := range strings.Split(*wls, ",") {
				p.Workloads = append(p.Workloads, strings.TrimSpace(n))
			}
		}
		p.MetaCacheBytes = *metaKB << 10
		p.LLCBytes = *llcKB << 10
		p.Parallelism, p.Progress = *workers, onProgress
		p.CollectTelemetry = *metrics != ""
		start := time.Now()
		names := p.Workloads
		if len(names) == 0 {
			names = workload.Names()
		}
		fmt.Fprintf(os.Stderr, "running performance sweep (%d workloads x 3 modes, %d ops each)...\n",
			len(names), p.Ops)
		res, err := experiments.RunPerf(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "performance sweep done in %v\n", time.Since(start).Round(time.Second))
		if merged != nil {
			merged.Merge(res.Telemetry)
		}
		if all || want["perf"] || want["fig4"] {
			emit(experiments.Fig4(res))
		}
		if all || want["perf"] || want["fig10a"] {
			emit(experiments.Fig10a(res))
		}
		if all || want["perf"] || want["fig10b"] {
			emit(experiments.Fig10b(res))
		}
		if all || want["perf"] || want["fig10c"] {
			emit(experiments.Fig10c(res))
		}
		if all || want["perf"] || want["metamiss"] {
			emit(experiments.MetaMissTable(res))
		}
	}

	if all || want["fig11"] {
		p := relParams()
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running Fig 11 Monte Carlo (%d trials x %d FIT points)...\n", p.Trials, len(p.FITs))
		r, err := experiments.Fig11(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "Fig 11 done in %v\n", time.Since(start).Round(time.Second))
		emit(r.Table)
		// Commentary, not table data: keep it off the machine-parsable
		// stdout stream.
		fmt.Fprintf(os.Stderr, "geo-mean UDR reduction vs baseline: SRC %.3gx, SAC %.3gx (paper: 2.5e3x, 3.7e4x)\n",
			r.GainSRC, r.GainSAC)
	}
	if all || want["fig12"] {
		p := relParams()
		t, err := experiments.Fig12(p, *fit, 8<<40)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}
	if all || want["strongecc"] {
		p := relParams()
		t, err := experiments.StrongECC(p)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}
	if all || want["ablation"] || want["ablation-depth"] {
		t, err := experiments.AblationCloneDepth(experiments.PerfParams{}, experiments.RelParams{}, 80)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}
	if all || want["ablation"] || want["ablation-eager"] {
		t, err := experiments.AblationEagerLazy(experiments.PerfParams{})
		if err != nil {
			fatal(err)
		}
		emit(t)
	}
	if all || want["trees"] {
		p := relParams()
		t, err := experiments.TreeComparison(p, *fit)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}
	if want["schemes"] {
		p := experiments.DefaultSchemeZooParams()
		p.Trials, p.Seed, p.Workers = *trials, *seed, *workers
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running scheme-zoo comparison (%d Monte Carlo trials)...\n", p.Trials)
		t, err := experiments.SchemeZoo(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scheme zoo done in %v\n", time.Since(start).Round(time.Second))
		emit(t)
	}
	if want["tenants"] {
		p := experiments.DefaultTenantExpParams()
		p.Seed = *seed
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running multi-tenant service experiments (%d ops per run)...\n", p.Ops)
		t, err := experiments.TenantContention(p)
		if err != nil {
			fatal(err)
		}
		emit(t)
		t, err = experiments.TenantRotation(p)
		if err != nil {
			fatal(err)
		}
		emit(t)
		fmt.Fprintf(os.Stderr, "multi-tenant experiments done in %v\n", time.Since(start).Round(time.Second))
	}
	if all || want["wear"] {
		t, err := experiments.WearLeveling(0, 0, 0, *seed)
		if err != nil {
			fatal(err)
		}
		emit(t)
	}

	if merged != nil {
		if err := merged.WriteFile(*metrics, `cmd="experiments"`); err != nil {
			fatal(err)
		}
		if *metrics != "-" {
			fmt.Fprintf(os.Stderr, "telemetry snapshot written to %s\n", *metrics)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
