package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles this command into dir and returns the binary path.
func buildCLI(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "experiments")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Stdout carries only the markdown tables; commentary like the Fig 11
// geo-mean summary and the sweep progress lines live on stderr, keeping
// stdout safe to pipe into a parser.
func TestStdoutIsMachineParsable(t *testing.T) {
	bin := buildCLI(t, t.TempDir())
	for _, tc := range []struct {
		args   []string
		stderr string // substring the human-facing stream must carry
	}{
		{[]string{"-run", "table2,table3,mtbf"}, ""},
		{[]string{"-run", "fig11", "-trials", "2000"}, "geo-mean UDR reduction"},
		{[]string{"-run", "fig4", "-ops", "2000", "-warmup", "500", "-workloads", "hashmap"}, "1 workloads x 3 modes"},
	} {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, tc.args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr:\n%s", tc.args, err, stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "|") {
				t.Errorf("%v: non-table stdout line: %q", tc.args, line)
			}
		}
		if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
			t.Errorf("%v: stderr missing %q:\n%s", tc.args, tc.stderr, stderr.String())
		}
	}
}
