// Command loadgen replays a workload pattern against a running
// soteria-serve instance, closed-loop, and reports simulated latency
// percentiles and throughput. The report (stdout) is deterministic for a
// fixed seed, op count and server shard count — at any -workers setting —
// because every statistic derives from the per-shard simulated clocks;
// wall-clock progress goes to stderr.
//
// Typical invocations:
//
//	loadgen -addr 127.0.0.1:9650 -workload hashmap -ops 100000 -workers 4
//	loadgen -workload btree -ops 50000 -seed 7 -snapshot snap.json
//
// -conns switches to the pipelined front end: each connection keeps a
// window of batch frames in flight instead of one op. -saturation runs
// the self-contained scale-out sweep (fresh in-process server per grid
// point) and writes the deterministic curve, e.g. to results/saturation.md:
//
//	loadgen -conns 4 -pipeline 8 -batch 64 -ops 100000
//	loadgen -saturation results/saturation.md -ops 20000
//
// Against a tenant-mode server (soteria-serve -tenants N), -tenants
// switches to the multi-tenant generator: it provisions the named
// tenants over the operator plane, runs one closed-loop stream per
// tenant (one session each — the protocol binds a session to its tenant
// at attach), verifies every read against the run's own content oracle,
// and reports per-tenant latency plus a Jain fairness index. An online
// key rotation can be armed mid-run to measure its cost under load:
//
//	loadgen -tenants 4 -tenant-lines 256 -ops 20000
//	loadgen -tenants 4 -rotate-tenant 2 -rotate-at 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"soteria/internal/devnet"
	"soteria/internal/loadgen"
	"soteria/internal/telemetry"
	"soteria/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9650", "soteria-serve address")
		workers   = flag.Int("workers", 4, "concurrent closed-loop workers (capped at the server's shard count)")
		ops       = flag.Int("ops", 10000, "total operation budget, split across shards")
		seed      = flag.Int64("seed", 1, "seed for every per-shard request stream")
		wlName    = flag.String("workload", "hashmap", fmt.Sprintf("access pattern to replay, one of %v", workload.Names()))
		footprint = flag.Uint64("footprint", 0, "per-shard data footprint in bytes (0 = whole shard)")
		snapshot  = flag.String("snapshot", "", "write the server's post-run telemetry snapshot here (- = stdout)")
		opTimeout = flag.Duration("op-timeout", 30*time.Second, "per-attempt request deadline")
		retries   = flag.Int("retries", 5, "max attempts per operation (-1 = unlimited within -retry-budget)")
		budget    = flag.Duration("retry-budget", 30*time.Second, "max wall time per operation, backoff included")

		conns     = flag.Int("conns", 0, "pipelined connections; > 0 switches to the windowed batching front end")
		pipeline  = flag.Int("pipeline", 8, "batch frames in flight per pipelined connection")
		batchSize = flag.Int("batch", 64, "max operations per batch frame")
		satPath   = flag.String("saturation", "", "run the self-contained saturation sweep and write the deterministic curve here (- = stdout)")
		satShards = flag.Int("saturation-shards", 8, "shard count of each sweep cell's in-process server")

		tenants      = flag.Int("tenants", 0, "drive this many tenant streams against a tenant-mode server (0 = flat device)")
		tenantLines  = flag.Uint64("tenant-lines", 256, "extent size, in 64-byte lines, of each provisioned tenant")
		tenantTokens = flag.String("tenant-tokens", "", "comma-separated hex tokens for tenants 1..N already provisioned on the server (default: provision them here)")
		rotateTenant = flag.Uint("rotate-tenant", 0, "arm an online key rotation for this tenant mid-run (0 = none)")
		rotateAt     = flag.Int("rotate-at", 0, "completed-op count that triggers the rotation (0 = half of -ops)")
		rotateStride = flag.Int("rotate-stride", 8, "lines re-encrypted per interleaved rotation step")
	)
	flag.Parse()

	// All connections report into one registry so the resilience table
	// aggregates the whole run.
	resilience := telemetry.NewRegistry()
	dialClient := func() (*devnet.Client, error) {
		return devnet.DialWith(*addr, devnet.Options{
			OpTimeout: *opTimeout,
			Retry: devnet.RetryPolicy{
				MaxAttempts: *retries,
				MaxElapsed:  *budget,
			},
			Telemetry: resilience,
		})
	}
	dial := func() (loadgen.Conn, error) { return dialClient() }

	if *satPath != "" {
		runSaturation(*satPath, *satShards, *ops, *seed, *wlName)
		return
	}

	if *tenants > 0 {
		runTenants(dialClient, *tenants, *tenantLines, *tenantTokens, *ops, *seed, *wlName,
			uint32(*rotateTenant), *rotateAt, *rotateStride)
		return
	}

	params := loadgen.Params{
		Dial:       dial,
		Workers:    *workers,
		Ops:        *ops,
		Seed:       *seed,
		Workload:   *wlName,
		Footprint:  *footprint,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		Resilience: resilience,
	}
	if *conns > 0 {
		params.DialPipe = func(h loadgen.PipeHandler) (loadgen.PipeConn, error) {
			return devnet.DialPipe(*addr, devnet.PipeHandler(h), devnet.PipeOptions{
				Options: devnet.Options{
					OpTimeout: *opTimeout,
					Retry: devnet.RetryPolicy{
						MaxAttempts: *retries,
						MaxElapsed:  *budget,
					},
					Telemetry: resilience,
				},
				Window:   *pipeline,
				MaxBatch: *batchSize,
			})
		}
		params.Conns = *conns
		params.Pipeline = *pipeline
		params.Batch = *batchSize
	}

	start := time.Now()
	rep, snap, err := loadgen.Run(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	// Wall-clock numbers vary run to run; keep them off the
	// machine-parsable stream.
	opsDone := rep.Read.Count + rep.Write.Count + rep.Barriers
	fmt.Fprintf(os.Stderr, "loadgen: %d ops in %v wall (%.0f ops/s)\n",
		opsDone, wall.Round(time.Millisecond), float64(opsDone)/wall.Seconds())

	if err := rep.WriteMarkdown(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if *snapshot != "" {
		if *snapshot == "-" {
			os.Stdout.Write(snap)
		} else if err := os.WriteFile(*snapshot, snap, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write snapshot: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: telemetry snapshot written to %s\n", *snapshot)
		}
	}
}

// runTenants provisions the tenants over the operator plane, then runs
// the multi-tenant generator: one session per tenant stream, the control
// connection doubling as the rotation admin.
func runTenants(dial func() (*devnet.Client, error), tenants int, lines uint64,
	tokens string, ops int, seed int64, wlName string, rotTenant uint32, rotAt, rotStride int) {
	admin, err := dial()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: admin dial: %v\n", err)
		os.Exit(1)
	}
	defer admin.Close()
	specs := make([]loadgen.TenantSpec, tenants)
	var given []string
	if tokens != "" {
		given = strings.Split(tokens, ",")
		if len(given) != tenants {
			fmt.Fprintf(os.Stderr, "loadgen: -tenant-tokens names %d tenants, -tenants is %d\n", len(given), tenants)
			os.Exit(1)
		}
	}
	for i := range specs {
		id := uint32(i + 1)
		var token uint64
		if given != nil {
			// Pre-provisioned server (soteria-serve -provision): attach
			// with the operator-supplied tokens — they never cross the
			// wire after provisioning.
			token, err = strconv.ParseUint(strings.TrimSpace(given[i]), 16, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: tenant %d token %q: %v\n", id, given[i], err)
				os.Exit(1)
			}
		} else if token, err = admin.TenantCreate(id, lines, 0); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: provision tenant %d: %v\n", id, err)
			os.Exit(1)
		}
		specs[i] = loadgen.TenantSpec{ID: id, Token: token, Lines: lines}
	}

	start := time.Now()
	rep, err := loadgen.RunTenants(loadgen.TenantParams{
		Dial:         func() (loadgen.TenantConn, error) { return dial() },
		Tenants:      specs,
		Ops:          ops,
		Seed:         seed,
		Workload:     wlName,
		RotateTenant: rotTenant,
		RotateAt:     rotAt,
		RotateStride: rotStride,
		Admin:        admin,
		Logf:         func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	var done uint64
	for _, p := range rep.Per {
		done += p.Ops
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d tenant ops in %v wall (%.0f ops/s)\n",
		done, wall.Round(time.Millisecond), float64(done)/wall.Seconds())
	if err := rep.WriteMarkdown(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}
