// Command loadgen replays a workload pattern against a running
// soteria-serve instance, closed-loop, and reports simulated latency
// percentiles and throughput. The report (stdout) is deterministic for a
// fixed seed, op count and server shard count — at any -workers setting —
// because every statistic derives from the per-shard simulated clocks;
// wall-clock progress goes to stderr.
//
// Typical invocations:
//
//	loadgen -addr 127.0.0.1:9650 -workload hashmap -ops 100000 -workers 4
//	loadgen -workload btree -ops 50000 -seed 7 -snapshot snap.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"soteria/internal/devnet"
	"soteria/internal/loadgen"
	"soteria/internal/telemetry"
	"soteria/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9650", "soteria-serve address")
		workers   = flag.Int("workers", 4, "concurrent closed-loop workers (capped at the server's shard count)")
		ops       = flag.Int("ops", 10000, "total operation budget, split across shards")
		seed      = flag.Int64("seed", 1, "seed for every per-shard request stream")
		wlName    = flag.String("workload", "hashmap", fmt.Sprintf("access pattern to replay, one of %v", workload.Names()))
		footprint = flag.Uint64("footprint", 0, "per-shard data footprint in bytes (0 = whole shard)")
		snapshot  = flag.String("snapshot", "", "write the server's post-run telemetry snapshot here (- = stdout)")
		opTimeout = flag.Duration("op-timeout", 30*time.Second, "per-attempt request deadline")
		retries   = flag.Int("retries", 5, "max attempts per operation (-1 = unlimited within -retry-budget)")
		budget    = flag.Duration("retry-budget", 30*time.Second, "max wall time per operation, backoff included")
	)
	flag.Parse()

	// All connections report into one registry so the resilience table
	// aggregates the whole run.
	resilience := telemetry.NewRegistry()
	dial := func() (loadgen.Conn, error) {
		return devnet.DialWith(*addr, devnet.Options{
			OpTimeout: *opTimeout,
			Retry: devnet.RetryPolicy{
				MaxAttempts: *retries,
				MaxElapsed:  *budget,
			},
			Telemetry: resilience,
		})
	}

	start := time.Now()
	rep, snap, err := loadgen.Run(loadgen.Params{
		Dial:       dial,
		Workers:    *workers,
		Ops:        *ops,
		Seed:       *seed,
		Workload:   *wlName,
		Footprint:  *footprint,
		Logf:       func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		Resilience: resilience,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	// Wall-clock numbers vary run to run; keep them off the
	// machine-parsable stream.
	opsDone := rep.Read.Count + rep.Write.Count + rep.Barriers
	fmt.Fprintf(os.Stderr, "loadgen: %d ops in %v wall (%.0f ops/s)\n",
		opsDone, wall.Round(time.Millisecond), float64(opsDone)/wall.Seconds())

	if err := rep.WriteMarkdown(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if *snapshot != "" {
		if *snapshot == "-" {
			os.Stdout.Write(snap)
		} else if err := os.WriteFile(*snapshot, snap, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write snapshot: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: telemetry snapshot written to %s\n", *snapshot)
		}
	}
}
