package main

import (
	"bytes"
	"fmt"
	"net"
	"os"

	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/loadgen"
	"soteria/internal/memctrl"
)

// runSaturation sweeps the front-end scale-out grid against fresh
// in-process servers (one per cell, so every point is independent and
// deterministic) and writes the committed-curve markdown to path.
// Wall-clock rates go to stderr.
func runSaturation(path string, shards, ops int, seed int64, wlName string) {
	start := func(cell loadgen.SaturationCell) (func() (loadgen.Conn, error), func(loadgen.PipeHandler) (loadgen.PipeConn, error), func(), error) {
		dev, err := device.New(device.Options{
			System:    config.TestSystem(),
			Mode:      memctrl.ModeSRC,
			Key:       []byte("saturation-sweep-key"),
			Shards:    shards,
			Telemetry: true,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		srv := devnet.NewServer(dev)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			dev.Close()
			return nil, nil, nil, err
		}
		done := make(chan struct{})
		go func() { defer close(done); srv.Serve(ln) }()
		addr := ln.Addr().String()
		dial := func() (loadgen.Conn, error) { return devnet.Dial(addr) }
		dialPipe := func(h loadgen.PipeHandler) (loadgen.PipeConn, error) {
			return devnet.DialPipe(addr, devnet.PipeHandler(h), devnet.PipeOptions{
				Window:   cell.Pipeline,
				MaxBatch: cell.Batch,
			})
		}
		stop := func() { srv.Shutdown(); <-done; dev.Close() }
		return dial, dialPipe, stop, nil
	}

	points, err := loadgen.RunSaturation(loadgen.SaturationParams{
		Ops:      ops,
		Seed:     seed,
		Workload: wlName,
		Start:    start,
		Logf:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: saturation: %v\n", err)
		os.Exit(1)
	}

	var buf bytes.Buffer
	if err := loadgen.WriteSaturationMarkdown(&buf, points); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: saturation: %v\n", err)
		os.Exit(1)
	}
	if path == "-" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: saturation: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: saturation curve written to %s\n", path)
}
