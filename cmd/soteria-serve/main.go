// Command soteria-serve runs the sharded secure-NVM device as a network
// service: a TCP front-end speaking the devnet length-prefixed binary
// protocol, plus an optional live metrics endpoint and a telemetry
// snapshot on shutdown. Pair it with cmd/loadgen.
//
// Typical invocations:
//
//	soteria-serve -addr 127.0.0.1:9650 -shards 4 -mode src
//	soteria-serve -shards 8 -metrics-addr 127.0.0.1:9651 -metrics final.prom
//
// SIGINT/SIGTERM shuts down gracefully: in-flight requests are answered,
// connections drained, the device flushed, and the -metrics snapshot
// written before exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"soteria/internal/chaos"
	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9650", "TCP listen address for the device protocol")
		shards      = flag.Int("shards", 4, "independent controller shards (line count must divide evenly)")
		modeName    = flag.String("mode", "src", "protection scheme: nonsecure|baseline|src|sac")
		queueDepth  = flag.Int("queue", 64, "per-shard request queue bound (full queue = busy reject)")
		batchSize   = flag.Int("batch", 8, "per-shard write batching/coalescing bound")
		capacity    = flag.Uint64("capacity", config.TestSystem().NVM.CapacityBytes, "device data capacity in bytes")
		metricsFile = flag.String("metrics", "", "write the final telemetry snapshot here on shutdown (.prom = Prometheus text, else JSON, - = stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics over HTTP at this address (/metrics Prometheus, /metrics.json JSON, /healthz, /readyz)")
		readStall   = flag.Duration("read-stall", 5*time.Second, "drop a peer that stalls this long mid-frame")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "drop a connection idle this long between requests (negative disables)")
		maxInFlight = flag.Int("max-inflight", 64, "server-wide cap on concurrently executing requests; excess is shed with a busy/retry-after response (negative disables)")
		verbose     = flag.Bool("v", false, "log connection lifecycle")
	)
	flag.Parse()

	mode, err := chaos.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	cfg := config.TestSystem()
	cfg.NVM.CapacityBytes = *capacity

	dev, err := device.New(device.Options{
		System:     cfg,
		Mode:       mode,
		Key:        []byte("soteria-serve-key"),
		Shards:     *shards,
		QueueDepth: *queueDepth,
		BatchSize:  *batchSize,
		Telemetry:  true,
	})
	if err != nil {
		fatal(err)
	}

	// The server's own resilience counters (shed, panics, dedup hits) live
	// in a separate registry from the device's, so wire telemetry
	// snapshots stay byte-identical to local ones; the metrics endpoint
	// exposes both.
	serverReg := telemetry.NewRegistry()
	sopts := devnet.ServerOptions{
		ReadStall:   *readStall,
		IdleTimeout: *idleTimeout,
		MaxInFlight: *maxInFlight,
		Telemetry:   serverReg,
	}
	if *verbose {
		sopts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	srv := devnet.NewServerWith(dev, sopts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	info := dev.Info()
	fmt.Fprintf(os.Stderr, "soteria-serve: %s device, %d shards, %d bytes, listening on %s\n",
		info.Mode, info.Shards, info.CapacityBytes, ln.Addr())

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			dev.Snapshot().WritePrometheus(w, "")
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			dev.Snapshot().WriteJSON(w)
		})
		mux.HandleFunc("/server-metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			serverReg.Snapshot().WritePrometheus(w, "")
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			// Liveness: the process answers.
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			// Readiness: serving and the device is up.
			h := srv.Health()
			w.Header().Set("Content-Type", "application/json")
			if !h.Ready {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(h)
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "soteria-serve: metrics endpoint: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "soteria-serve: metrics on http://%s/metrics\n", *metricsAddr)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "soteria-serve: %v, draining\n", s)
	case err := <-done:
		fmt.Fprintf(os.Stderr, "soteria-serve: accept loop ended: %v\n", err)
	}

	srv.Shutdown()
	if err := dev.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "soteria-serve: final flush: %v\n", err)
	}
	if *metricsFile != "" {
		if err := dev.Snapshot().WriteFile(*metricsFile, ""); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-serve: write metrics: %v\n", err)
		} else if *metricsFile != "-" {
			fmt.Fprintf(os.Stderr, "soteria-serve: telemetry snapshot written to %s\n", *metricsFile)
		}
	}
	if err := dev.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "soteria-serve: %v\n", err)
	os.Exit(1)
}
