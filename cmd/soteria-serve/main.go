// Command soteria-serve runs the sharded secure-NVM device as a network
// service: a TCP front-end speaking the devnet length-prefixed binary
// protocol, plus an optional live metrics endpoint and a telemetry
// snapshot on shutdown. Pair it with cmd/loadgen.
//
// Typical invocations:
//
//	soteria-serve -addr 127.0.0.1:9650 -shards 4 -mode src
//	soteria-serve -shards 8 -metrics-addr 127.0.0.1:9651 -metrics final.prom
//	soteria-serve -tenants 4 -tenant-lines 256 -metrics-addr 127.0.0.1:9651
//
// With -tenants N the server runs in multi-tenant mode: the flat data
// plane is disabled, the registry accepts tenant ids 1..N, and clients
// attach per session with OpTenantAttach after provisioning over the
// wire's operator plane (TenantCreate — cmd/loadgen -tenants does this
// itself). -provision M additionally provisions tenants 1..M at startup
// and prints their access tokens to stderr, one per line, for the
// operator to hand out. Online key rotation runs over the operator
// plane (TenantRotate/TenantStep), and the metrics endpoint gains
// /tenants (registry listing) and /tenant-metrics?id=N (one tenant's
// counters).
//
// SIGINT/SIGTERM shuts down gracefully: in-flight requests are answered,
// connections drained, the device flushed, and the -metrics snapshot
// written before exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"soteria/internal/chaos"
	"soteria/internal/config"
	"soteria/internal/device"
	"soteria/internal/devnet"
	"soteria/internal/telemetry"
	"soteria/internal/tenant"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9650", "TCP listen address for the device protocol")
		shards      = flag.Int("shards", 4, "independent controller shards (line count must divide evenly)")
		modeName    = flag.String("mode", "src", "protection scheme: nonsecure|baseline|src|sac")
		queueDepth  = flag.Int("queue", 64, "per-shard request queue bound (full queue = busy reject)")
		batchSize   = flag.Int("batch", 8, "per-shard write batching/coalescing bound")
		capacity    = flag.Uint64("capacity", config.TestSystem().NVM.CapacityBytes, "device data capacity in bytes")
		metricsFile = flag.String("metrics", "", "write the final telemetry snapshot here on shutdown (.prom = Prometheus text, else JSON, - = stdout)")
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics over HTTP at this address (/metrics Prometheus, /metrics.json JSON, /healthz, /readyz)")
		readStall   = flag.Duration("read-stall", 5*time.Second, "drop a peer that stalls this long mid-frame")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "drop a connection idle this long between requests (negative disables)")
		maxInFlight = flag.Int("max-inflight", 64, "server-wide cap on concurrently executing requests; excess is shed with a busy/retry-after response (negative disables)")
		tenants     = flag.Int("tenants", 0, "run in multi-tenant mode accepting this many tenant ids (0 = flat device)")
		provision   = flag.Int("provision", 0, "provision tenants 1..N at startup and print their tokens")
		tenantLines = flag.Uint64("tenant-lines", 256, "extent size, in 64-byte lines, of each startup-provisioned tenant")
		tenantQuota = flag.Uint("tenant-quota", 0, "hard per-window op budget of each startup-provisioned tenant (0 = unlimited)")
		masterKey   = flag.String("master-key", "soteria-serve-tenant-master", "master key rooting every tenant key domain")
		verbose     = flag.Bool("v", false, "log connection lifecycle")
	)
	flag.Parse()

	mode, err := chaos.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	cfg := config.TestSystem()
	cfg.NVM.CapacityBytes = *capacity

	devOpts := device.Options{
		System:     cfg,
		Mode:       mode,
		Key:        []byte("soteria-serve-key"),
		Shards:     *shards,
		QueueDepth: *queueDepth,
		BatchSize:  *batchSize,
		Telemetry:  true,
	}

	// Flat and tenant mode share every downstream hook — metrics
	// snapshots, the final flush, teardown — so the rest of main is
	// mode-blind.
	var (
		dev      *device.Device
		svc      *tenant.Service
		info     device.Info
		snapshot func() *telemetry.Snapshot
		flush    func() error
		closeDev func() error
	)
	if *tenants > 0 {
		eng, err := device.NewEngine(device.EngineOptions{Options: devOpts})
		if err != nil {
			fatal(err)
		}
		svc, err = tenant.New(eng, tenant.Options{
			MasterKey:  []byte(*masterKey),
			MaxTenants: *tenants,
			Telemetry:  true,
		})
		if err != nil {
			fatal(err)
		}
		if *provision > *tenants {
			fatal(fmt.Errorf("-provision %d exceeds -tenants %d", *provision, *tenants))
		}
		for id := 1; id <= *provision; id++ {
			token, err := svc.Provision(uint32(id), *tenantLines, uint32(*tenantQuota))
			if err != nil {
				fatal(fmt.Errorf("provision tenant %d: %w", id, err))
			}
			fmt.Fprintf(os.Stderr, "soteria-serve: tenant %d token %016x\n", id, token)
		}
		info = svc.DeviceInfo()
		snapshot = svc.DeviceSnapshot
		flush = svc.Flush
		closeDev = eng.Close
	} else {
		var err error
		dev, err = device.New(devOpts)
		if err != nil {
			fatal(err)
		}
		info = dev.Info()
		snapshot = dev.Snapshot
		flush = dev.Flush
		closeDev = dev.Close
	}

	// The server's own resilience counters (shed, panics, dedup hits) live
	// in a separate registry from the device's, so wire telemetry
	// snapshots stay byte-identical to local ones; the metrics endpoint
	// exposes both.
	serverReg := telemetry.NewRegistry()
	sopts := devnet.ServerOptions{
		ReadStall:   *readStall,
		IdleTimeout: *idleTimeout,
		MaxInFlight: *maxInFlight,
		Telemetry:   serverReg,
		Tenants:     svc,
	}
	if *verbose {
		sopts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	srv := devnet.NewServerWith(dev, sopts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if svc != nil {
		fmt.Fprintf(os.Stderr, "soteria-serve: %s device, %d shards, %d bytes, %d tenants, listening on %s\n",
			info.Mode, info.Shards, info.CapacityBytes, *tenants, ln.Addr())
	} else {
		fmt.Fprintf(os.Stderr, "soteria-serve: %s device, %d shards, %d bytes, listening on %s\n",
			info.Mode, info.Shards, info.CapacityBytes, ln.Addr())
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			snapshot().WritePrometheus(w, "")
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			snapshot().WriteJSON(w)
		})
		if svc != nil {
			mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(svc.Tenants())
			})
			mux.HandleFunc("/tenant-metrics", func(w http.ResponseWriter, r *http.Request) {
				id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 32)
				if err != nil {
					http.Error(w, "tenant-metrics: ?id=<tenant> required", http.StatusBadRequest)
					return
				}
				snap, err := svc.Snapshot(uint32(id))
				if err != nil {
					http.Error(w, err.Error(), http.StatusNotFound)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				snap.WriteJSON(w)
			})
		}
		mux.HandleFunc("/server-metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			serverReg.Snapshot().WritePrometheus(w, "")
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			// Liveness: the process answers.
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			// Readiness: serving and the device is up.
			h := srv.Health()
			w.Header().Set("Content-Type", "application/json")
			if !h.Ready {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(h)
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "soteria-serve: metrics endpoint: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "soteria-serve: metrics on http://%s/metrics\n", *metricsAddr)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "soteria-serve: %v, draining\n", s)
	case err := <-done:
		fmt.Fprintf(os.Stderr, "soteria-serve: accept loop ended: %v\n", err)
	}

	srv.Shutdown()
	if err := flush(); err != nil {
		fmt.Fprintf(os.Stderr, "soteria-serve: final flush: %v\n", err)
	}
	if *metricsFile != "" {
		if err := snapshot().WriteFile(*metricsFile, ""); err != nil {
			fmt.Fprintf(os.Stderr, "soteria-serve: write metrics: %v\n", err)
		} else if *metricsFile != "-" {
			fmt.Fprintf(os.Stderr, "soteria-serve: telemetry snapshot written to %s\n", *metricsFile)
		}
	}
	if err := closeDev(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "soteria-serve: %v\n", err)
	os.Exit(1)
}
