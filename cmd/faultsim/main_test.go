package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles this command into dir and returns the binary path.
func buildCLI(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "faultsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Stdout carries only the markdown tables — every run header, progress
// line, and wall-clock figure goes to stderr, so piping stdout into a
// parser (or diffing two runs) never sees nondeterministic text.
func TestStdoutIsMachineParsable(t *testing.T) {
	bin := buildCLI(t, t.TempDir())
	for _, args := range [][]string{
		{"-fit", "40", "-trials", "3000", "-seed", "5"},
		{"-fits", "20,80", "-trials", "2000", "-seed", "5", "-progress"},
	} {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "|") {
				t.Errorf("%v: non-table stdout line: %q", args, line)
			}
		}
		if !strings.Contains(stderr.String(), "trials") {
			t.Errorf("%v: run header missing from stderr:\n%s", args, stderr.String())
		}
	}
}
