// Command faultsim runs the standalone memory-reliability Monte Carlo:
// device faults over a five-year lifetime on the Table-4 DIMM, evaluated
// under Chipkill, with losses attributed per protection scheme. Sweeps go
// through the parallel experiment engine (internal/runner): results are
// bit-identical for any -workers value, and -cache makes re-runs of an
// unchanged sweep instant.
//
// Usage:
//
//	faultsim -fit 80 -trials 200000
//	faultsim -fits 1,2,5,10,20,40,80 -trials 1000000 -workers 8 -progress
//	faultsim -fits 1,2,5,10,20,40,80 -cache results/cache
//	faultsim -fit 80 -metrics faultsim.prom -pprof cpu.out
//
// -metrics writes the telemetry snapshots of all FIT points, merged in
// point order, to a file (.prom = Prometheus text, else deterministic
// JSON, - = stdout). -pprof captures a CPU profile of the sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/faultsim"
	"soteria/internal/runner"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
)

func main() {
	var (
		fit      = flag.Float64("fit", 80, "per-chip FIT rate (paper sweeps 1-80)")
		fits     = flag.String("fits", "", "comma-separated FIT sweep (overrides -fit)")
		trials   = flag.Int("trials", 200_000, "Monte Carlo trials per FIT point (importance-sampled)")
		seed     = flag.Int64("seed", 42, "random seed")
		raw      = flag.Bool("raw", false, "disable importance sampling (plain Monte Carlo; needs vastly more trials)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs; results identical for any value)")
		block    = flag.Int("block", 0, "trials per deterministic RNG block (0 = default; part of the seed)")
		cacheDir = flag.String("cache", "", "result cache directory (empty = no caching)")
		progress = flag.Bool("progress", false, "report sweep progress on stderr")
		metrics  = flag.String("metrics", "", "write merged telemetry snapshot to file (.prom = Prometheus text, else JSON, - = stdout)")
		cpuprof  = flag.String("pprof", "", "write a CPU profile of the sweep to file")
	)
	flag.Parse()

	if *cpuprof != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	points := []float64{*fit}
	if *fits != "" {
		points = points[:0]
		for _, f := range strings.Split(*fits, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad -fits entry %q: %w", f, err))
			}
			points = append(points, v)
		}
	}

	cfg := config.Table4()
	schemes := []*faultsim.Scheme{faultsim.NonSecureScheme(cfg.DIMM)}
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := faultsim.BuildScheme(cfg.DIMM, pol, 8192)
		if err != nil {
			fatal(err)
		}
		schemes = append(schemes, s)
	}

	eng := runner.New(runner.Options{
		Workers:    *workers,
		CacheDir:   *cacheDir,
		OnProgress: progressSink(*progress),
		Logf:       logf,
	})
	start := time.Now()
	results, err := eng.RunFaultSweep(runner.FaultSweep{
		Config:      cfg,
		FITs:        points,
		Trials:      *trials,
		Seed:        *seed,
		Conditional: !*raw,
		BlockSize:   *block,
		Schemes:     schemes,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if *metrics != "" {
		merged := &telemetry.Snapshot{}
		for _, res := range results {
			merged.Merge(res.Telemetry)
		}
		if err := merged.WriteFile(*metrics, `sim="faultsim"`); err != nil {
			fatal(err)
		}
		if *metrics != "-" {
			fmt.Fprintf(os.Stderr, "telemetry snapshot written to %s\n", *metrics)
		}
	}

	if len(points) == 1 {
		res := results[0]
		// Run headers carry wall-clock time and belong on stderr; stdout
		// stays machine-parsable (markdown tables only).
		logf("%d trials at FIT=%g over %.0f years (%v); importance weight %.3g",
			res.Trials, res.TotalFIT, cfg.Years, elapsed, res.Weight)
		t := stats.NewTable("per-scheme expected loss over one DIMM lifetime",
			"scheme", "data capacity", "UE trials", "unverifiable trials", "L_error ratio", "UDR")
		for _, s := range res.Schemes {
			t.AddRow(s.Name, stats.FormatBytes(float64(s.DataBytes)), s.TrialsWithUE, s.TrialsWithUnv,
				s.ErrorRatio(res.Trials), s.UDR(res.Trials))
		}
		if err := t.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	logf("%d trials per FIT point over %.0f years (%v total)",
		results[0].Trials, cfg.Years, elapsed)
	headers := []string{"FIT/chip"}
	for _, s := range schemes {
		headers = append(headers, s.Name+" UDR")
	}
	headers = append(headers, "UE trials")
	t := stats.NewTable("UDR vs FIT sweep", headers...)
	for i, res := range results {
		row := make([]interface{}, 0, len(headers))
		row = append(row, points[i])
		for _, s := range res.Schemes {
			row = append(row, s.UDR(res.Trials))
		}
		row = append(row, res.Schemes[1].TrialsWithUE)
		t.AddRow(row...)
	}
	if err := t.WriteMarkdown(os.Stdout); err != nil {
		fatal(err)
	}
}

func progressSink(enabled bool) func(runner.Progress) {
	if !enabled {
		return nil
	}
	return runner.WriteProgress(os.Stderr)
}

// logf writes human-facing status to stderr, keeping stdout reserved for
// the machine-parsable tables.
func logf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
