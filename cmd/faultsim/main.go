// Command faultsim runs the standalone memory-reliability Monte Carlo:
// device faults over a five-year lifetime on the Table-4 DIMM, evaluated
// under Chipkill, with losses attributed per protection scheme.
//
// Usage:
//
//	faultsim -fit 80 -trials 200000
//	faultsim -fit 10 -trials 1000000 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"soteria/internal/config"
	"soteria/internal/core"
	"soteria/internal/faultsim"
	"soteria/internal/stats"
)

func main() {
	var (
		fit     = flag.Float64("fit", 80, "per-chip FIT rate (paper sweeps 1-80)")
		trials  = flag.Int("trials", 200_000, "Monte Carlo trials (importance-sampled)")
		seed    = flag.Int64("seed", 42, "random seed")
		raw     = flag.Bool("raw", false, "disable importance sampling (plain Monte Carlo; needs vastly more trials)")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	)
	flag.Parse()

	cfg := config.Table4()
	schemes := []*faultsim.Scheme{faultsim.NonSecureScheme(cfg.DIMM)}
	for _, pol := range []core.ClonePolicy{core.Baseline(), core.SRC(), core.SAC()} {
		s, err := faultsim.BuildScheme(cfg.DIMM, pol, 8192)
		if err != nil {
			fatal(err)
		}
		schemes = append(schemes, s)
	}

	start := time.Now()
	res, err := faultsim.Run(faultsim.Options{
		Config:      cfg,
		TotalFIT:    *fit,
		Trials:      *trials,
		Seed:        *seed,
		Workers:     *workers,
		Conditional: !*raw,
	}, schemes)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%d trials at FIT=%g over %.0f years (%v); importance weight %.3g\n\n",
		res.Trials, res.TotalFIT, cfg.Years, time.Since(start).Round(time.Millisecond), res.Weight)

	t := stats.NewTable("per-scheme expected loss over one DIMM lifetime",
		"scheme", "data capacity", "UE trials", "unverifiable trials", "L_error ratio", "UDR")
	for _, s := range res.Schemes {
		t.AddRow(s.Name, stats.FormatBytes(float64(s.DataBytes)), s.TrialsWithUE, s.TrialsWithUnv,
			s.ErrorRatio(res.Trials), s.UDR(res.Trials))
	}
	if err := t.WriteMarkdown(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
