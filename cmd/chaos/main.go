// Command chaos drives the deterministic chaos harness against the memory
// controller: single scripted crash/fault scenarios, exhaustive crash-point
// sweeps ("crash at write k, recover, verify, for all k"), nested
// crash-during-recovery sweeps, and randomized fault campaigns. Every
// failure prints a one-line repro command; the same seed always replays the
// same scenario.
//
// Typical invocations:
//
//	go run ./cmd/chaos -seed 1 -writes 200 -sweep
//	go run ./cmd/chaos -seed 1 -quick -sweep -nested
//	go run ./cmd/chaos -seed 7 -campaign fault -trials 20
//	go run ./cmd/chaos -seed 7 -campaign shadow -break-half-repair
//	go run ./cmd/chaos -seed 3 -writes 60 -mode src -crash-at 30 -crash-at2 12
//	go run ./cmd/chaos -seed 2 -writes 80 -strategy triad-nvm -sweep
//	go run ./cmd/chaos -seed 1 -quick -schemes
//	go run ./cmd/chaos -tenants -quick -sweep
//	go run ./cmd/chaos -tenants -schemes -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"soteria/internal/chaos"
	"soteria/internal/memctrl"
)

func main() {
	var (
		seed         = flag.Int64("seed", 1, "master seed for workload, fault schedule and crash points")
		writes       = flag.Int("writes", 200, "workload length in data operations")
		modeName     = flag.String("mode", "src", "controller mode: nonsecure|baseline|src|sac")
		strategyName = flag.String("strategy", "", "metadata-persistence strategy: "+strings.Join(memctrl.Strategies(), "|")+" (default soteria)")
		schemes      = flag.Bool("schemes", false, "run the cross-scheme conformance suite: every registered strategy through crash sweep, nested sweep and fault campaign")
		sweep        = flag.Bool("sweep", false, "crash at every stride-th workload boundary")
		nested       = flag.Bool("nested", false, "sweep a second crash over the recovery's own boundaries")
		stride       = flag.Int("stride", 1, "boundary step for -sweep and -nested")
		crashAt      = flag.Int("crash-at", -1, "crash at this workload boundary (single run, or first crash for -nested)")
		crashAt2     = flag.Int("crash-at2", -1, "crash at this boundary of the recovery (needs -crash-at)")
		campaign     = flag.String("campaign", "", "randomized campaign: fault|shadow")
		trials       = flag.Int("trials", 20, "trials per campaign")
		faultRate    = flag.Float64("fault-rate", 0.01, "per-boundary device fault probability (single runs only when set explicitly)")
		shadowFaults = flag.Int("shadow-faults", 2, "shadow entry halves to corrupt before recovery (single runs only when set explicitly)")
		breakRepair  = flag.Bool("break-half-repair", false, "disable Soteria half repair; the harness must catch the resulting loss")
		quick        = flag.Bool("quick", false, "smoke-test sizes: writes 60, stride 5, trials 5 (unless set explicitly)")
		deviceRun    = flag.Bool("device", false, "run against the sharded internal/device service instead of a bare controller")
		tenantsRun   = flag.Bool("tenants", false, "run the multi-tenant service leg: per-tenant acked-write oracle, cross-tenant isolation oracle and online rotation under crashes; combine with -sweep or -schemes")
		tenantCount  = flag.Int("tenant-count", 3, "provisioned tenants for -tenants")
		rotateAt     = flag.Int("rotate-at", -1, "for -tenants: begin an online key rotation of tenant 1 before this workload op (default: mid-workload; -1 disables only when set explicitly)")
		shards       = flag.Int("shards", 4, "shard count for -device")
		tracePath    = flag.String("trace", "", "with a single -device run: record the scenario and write a time-travel replay trace here when it crashes")
		replayPath   = flag.String("replay", "", "re-execute a recorded replay trace file: restore the checkpoint nearest the fault and re-run events up to the crash point")
		netRun       = flag.Bool("net", false, "run the full network stack (server + fault proxy + retrying clients); combine with -sweep for the standard fault sweep")
		netFault     = flag.String("net-fault", "clean", "fault schedule for -net: clean|latency|throttle|corrupt|reset|truncate|partition|combined")
		netClients   = flag.Int("net-clients", 3, "concurrent clients for -net")
		netPipeline  = flag.Int("pipeline", 0, "for -net: batch frames in flight per client (> 0 switches to the pipelined batched front end)")
		netBatch     = flag.Int("net-batch", 0, "for -net with -pipeline: max ops per batch frame (default 8)")
		kills        = flag.Int("kills", 0, "server kill/restart cycles mid-workload for -net")
		verbose      = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *quick {
		if !set["writes"] {
			*writes = 60
		}
		if !set["stride"] {
			*stride = 5
		}
		if !set["trials"] {
			*trials = 5
		}
	}

	mode, err := chaos.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	base := chaos.Config{
		Seed:            *seed,
		Writes:          *writes,
		Mode:            mode,
		Strategy:        *strategyName,
		CrashAt:         *crashAt,
		NestedCrashAt:   *crashAt2,
		BreakHalfRepair: *breakRepair,
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
		base.Logf = logf
	}

	if *replayPath != "" {
		if *netRun || *deviceRun || *sweep || *schemes || *campaign != "" || *nested {
			fatal(fmt.Errorf("-replay is self-contained; the trace file names the full scenario"))
		}
		data, err := os.ReadFile(*replayPath)
		if err != nil {
			fatal(err)
		}
		tr, err := chaos.DecodeReplayTrace(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replaying %s: seed %d, %d shards, strategy %s, crash-at %d (checkpoint at op %d, %d recorded events)\n",
			*replayPath, tr.Cfg.Seed, tr.Cfg.Shards, tr.Cfg.Strategy, tr.Cfg.CrashAt, tr.CkptOp, len(tr.Events))
		res, err := chaos.DeviceReplay(tr, logf)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Summary())
		if len(res.Violations) > 0 {
			fmt.Printf("REPRO: %s\n", chaos.ReplayRepro(*replayPath))
			os.Exit(1)
		}
		fmt.Println("replay: no violations")
		return
	}

	if *netRun {
		if *campaign != "" || *nested || *crashAt2 >= 0 || *deviceRun {
			fatal(fmt.Errorf("-net supports single runs and -sweep only"))
		}
		nbase := chaos.NetConfig{
			Seed:     *seed,
			Ops:      *writes,
			Clients:  *netClients,
			Shards:   *shards,
			Mode:     mode,
			Kills:    *kills,
			Pipeline: *netPipeline,
			Batch:    *netBatch,
			Logf:     base.Logf,
		}
		if *quick && !set["writes"] {
			nbase.Ops = 30
		}
		if *sweep {
			res, err := chaos.NetSweep(nbase, func(format string, a ...any) {
				// Sweep progress carries wall-clock-dependent counters;
				// keep stdout deterministic by diverting it to stderr.
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			})
			report("net sweep", res, err, false)
			return
		}
		nbase.FaultName = *netFault
		sched, err := chaos.NetFaultSchedule(*netFault)
		if err != nil {
			fatal(err)
		}
		nbase.Schedule = sched
		res, err := chaos.NetRun(nbase)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Report())
		fmt.Fprintln(os.Stderr, res.Diagnostics())
		if len(res.Violations) > 0 {
			fmt.Printf("REPRO: %s\n", chaos.NetRepro(nbase))
			os.Exit(1)
		}
		return
	}

	if *tenantsRun {
		if *campaign != "" || *nested || *crashAt2 >= 0 || set["fault-rate"] || set["shadow-faults"] ||
			*breakRepair || *deviceRun || *netRun || *tracePath != "" {
			fatal(fmt.Errorf("-tenants supports single runs, -sweep and -schemes only"))
		}
		tbase := chaos.TenantConfig{
			Seed:     *seed,
			Writes:   *writes,
			Tenants:  *tenantCount,
			Shards:   *shards,
			Mode:     mode,
			Strategy: *strategyName,
			CrashAt:  *crashAt,
			RotateAt: *rotateAt,
			Logf:     base.Logf,
		}
		if !set["rotate-at"] {
			// Rotation coverage on by default: kick off tenant 1's key
			// rotation mid-workload so sweeps cross the rotation window.
			tbase.RotateAt = *writes / 2
		}
		if *schemes {
			bad := false
			for _, strategy := range memctrl.Strategies() {
				res, err := chaos.TenantConformance(strategy, tbase, *stride)
				if err != nil {
					fatal(err)
				}
				for _, f := range res.Failures {
					for _, v := range f.Violations {
						fmt.Printf("VIOLATION: %s\n", v)
					}
					fmt.Printf("REPRO: %s\n", f.Repro)
				}
				status := "ok"
				if len(res.Failures) > 0 {
					status = fmt.Sprintf("%d FAILED runs", len(res.Failures))
					bad = true
				}
				fmt.Printf("tenants %-13s %4d runs, %s\n", strategy+":", res.Runs, status)
			}
			if bad {
				os.Exit(1)
			}
			return
		}
		if *sweep {
			res, err := chaos.TenantCrashSweep(tbase, *stride, logf)
			report("tenant crash sweep", res, err, false)
			return
		}
		res, err := chaos.TenantRun(tbase)
		if err != nil {
			fatal(err)
		}
		out := &chaos.CampaignResult{Runs: 1, Boundaries: res.Boundaries}
		if len(res.Violations) > 0 {
			out.Failures = []chaos.Failure{{Repro: chaos.TenantRepro(tbase), Violations: res.Violations}}
		}
		if res.Crashed {
			fmt.Printf("tenant run: %d tenants, %d shards, %d boundaries, crashed at %d (shard %d)\n",
				*tenantCount, *shards, res.Boundaries, res.CrashBoundary, res.CrashShard)
		} else {
			fmt.Printf("tenant run: %d tenants, %d shards, %d boundaries, no crash\n", *tenantCount, *shards, res.Boundaries)
		}
		report("tenant run", out, nil, false)
		return
	}

	if *deviceRun {
		if *campaign != "" || *nested || *crashAt2 >= 0 || set["fault-rate"] || set["shadow-faults"] || *breakRepair {
			fatal(fmt.Errorf("-device supports single runs and -sweep only (campaigns, nested crashes and fault schedules stay on the single-controller harness)"))
		}
		dbase := chaos.DeviceConfig{
			Seed:     *seed,
			Writes:   *writes,
			Shards:   *shards,
			Mode:     mode,
			Strategy: *strategyName,
			CrashAt:  *crashAt,
			Logf:     base.Logf,
		}
		if *sweep {
			if *tracePath != "" {
				fatal(fmt.Errorf("-trace records a single -device run; re-run a failing sweep point's REPRO line with -trace to capture it"))
			}
			res, err := chaos.DeviceCrashSweep(dbase, *stride, logf)
			report("device crash sweep", res, err, false)
			return
		}
		var res *chaos.DeviceResult
		var err error
		if *tracePath != "" {
			var tr *chaos.ReplayTrace
			res, tr, err = chaos.DeviceRunTraced(dbase)
			if err != nil {
				fatal(err)
			}
			if tr != nil {
				if werr := os.WriteFile(*tracePath, tr.Encode(), 0o644); werr != nil {
					fatal(werr)
				}
				fmt.Fprintf(os.Stderr, "wrote replay trace to %s (%d events, checkpoint at op %d of %d)\n",
					*tracePath, len(tr.Events), tr.CkptOp, tr.CrashOp)
				fmt.Printf("REPLAY: %s\n", chaos.ReplayRepro(*tracePath))
			} else {
				fmt.Fprintln(os.Stderr, "no crash fired; no replay trace written")
			}
		} else {
			res, err = chaos.DeviceRun(dbase)
			if err != nil {
				fatal(err)
			}
		}
		out := &chaos.CampaignResult{Runs: 1, Boundaries: res.Boundaries}
		if len(res.Violations) > 0 {
			out.Failures = []chaos.Failure{{Repro: chaos.DeviceRepro(dbase), Violations: res.Violations}}
		}
		if res.Crashed {
			fmt.Printf("device run: %d shards, %d boundaries, crashed at %d (shard %d)",
				*shards, res.Boundaries, res.CrashBoundary, res.CrashShard)
			if res.Report != nil {
				fmt.Printf(", recovered %d/%d tracked blocks", res.Report.RecoveredBlocks(), res.Report.TrackedEntries())
			}
			fmt.Println()
		} else {
			fmt.Printf("device run: %d shards, %d boundaries, no crash\n", *shards, res.Boundaries)
		}
		report("device run", out, nil, false)
		return
	}

	if *schemes {
		if *campaign != "" || *nested || *sweep || *crashAt >= 0 || *breakRepair || set["shadow-faults"] {
			fatal(fmt.Errorf("-schemes is a self-contained suite; combine only with -seed/-writes/-stride/-trials/-fault-rate/-quick"))
		}
		cfg := chaos.ConformanceConfig{
			Seed:        *seed,
			Writes:      *writes,
			Mode:        mode,
			Stride:      *stride,
			FaultTrials: *trials,
			FaultRate:   *faultRate,
			Logf:        base.Logf,
		}
		results, err := chaos.ConformanceAll(nil, cfg)
		if err != nil {
			fatal(err)
		}
		bad := false
		for _, r := range results {
			fails := r.Failures()
			for _, f := range fails {
				for _, v := range f.Violations {
					fmt.Printf("VIOLATION: %s\n", v)
				}
				fmt.Printf("REPRO: %s\n", f.Repro)
			}
			status := "ok"
			if len(fails) > 0 {
				status = fmt.Sprintf("%d FAILED runs", len(fails))
				bad = true
			}
			fmt.Printf("schemes %-13s %4d runs, %s\n", r.Strategy+":", r.Runs(), status)
		}
		if bad {
			os.Exit(1)
		}
		return
	}

	switch {
	case *campaign == "fault":
		base.FaultRate = *faultRate
		base.CrashAt, base.NestedCrashAt = -1, -1
		res, err := chaos.FaultCampaign(base, *trials, logf)
		report("fault campaign", res, err, *breakRepair)

	case *campaign == "shadow" || (*breakRepair && *campaign == "" && !set["crash-at"]):
		// -break-half-repair on its own means "prove the harness catches a
		// sabotaged recovery": run the shadow campaign against it. With an
		// explicit -crash-at (a printed repro line) the single-run path
		// below replays the exact scenario instead.
		base.ShadowFaults = *shadowFaults
		base.CrashAt, base.NestedCrashAt = -1, -1
		res, err := chaos.ShadowCampaign(base, *trials, logf)
		report("shadow campaign", res, err, *breakRepair)

	case *campaign != "":
		fatal(fmt.Errorf("unknown -campaign %q (want fault|shadow)", *campaign))

	case *nested:
		if set["fault-rate"] {
			base.FaultRate = *faultRate
		}
		if base.CrashAt < 0 {
			// No first crash point given: probe the workload and crash in
			// the middle of it.
			probe := base
			probe.CrashAt, probe.NestedCrashAt = -1, -1
			pres, err := chaos.Run(probe)
			if err != nil {
				fatal(err)
			}
			base.CrashAt = pres.Boundaries / 2
		}
		base.NestedCrashAt = -1
		res, err := chaos.NestedSweep(base, *stride, logf)
		report("nested sweep", res, err, *breakRepair)

	case *sweep:
		if set["fault-rate"] {
			base.FaultRate = *faultRate
		}
		res, err := chaos.CrashSweep(base, *stride, logf)
		report("crash sweep", res, err, *breakRepair)

	default:
		// Single scripted run: exactly what a printed repro line replays.
		if base.NestedCrashAt >= 0 && base.CrashAt < 0 {
			fmt.Println("note: -crash-at2 has no effect without -crash-at (no first crash to recover from)")
		}
		if set["fault-rate"] {
			base.FaultRate = *faultRate
		}
		if set["shadow-faults"] {
			base.ShadowFaults = *shadowFaults
		}
		res, err := chaos.Run(base)
		if err != nil {
			fatal(err)
		}
		out := &chaos.CampaignResult{Runs: 1, Boundaries: res.Boundaries}
		if len(res.Violations) > 0 {
			out.Failures = []chaos.Failure{{Repro: chaos.Repro(base), Violations: res.Violations}}
		}
		if res.Crashed {
			fmt.Printf("run: %d boundaries, crashed at %d", res.Boundaries, res.CrashBoundary)
			if res.NestedCrashed {
				fmt.Printf(" (nested crash during recovery)")
			}
			if res.Report != nil {
				fmt.Printf(", recovered %d/%d tracked blocks", res.Report.RecoveredBlocks, res.Report.TrackedEntries)
			}
			fmt.Println()
		} else {
			fmt.Printf("run: %d boundaries, no crash\n", res.Boundaries)
		}
		if len(res.Faults) > 0 {
			fmt.Printf("injected %d device faults\n", len(res.Faults))
		}
		report("run", out, nil, *breakRepair)
	}
}

// report prints failures with their repro lines and exits. With inverted
// expectations (-break-half-repair) finding violations is the success case:
// the harness proved it catches a sabotaged recovery.
func report(what string, res *chaos.CampaignResult, err error, invert bool) {
	if err != nil {
		fatal(err)
	}
	for _, f := range res.Failures {
		for _, v := range f.Violations {
			fmt.Printf("VIOLATION: %s\n", v)
		}
		fmt.Printf("REPRO: %s\n", f.Repro)
	}
	if invert {
		if len(res.Failures) == 0 {
			fmt.Printf("%s: %d runs and the sabotaged recovery was NOT caught\n", what, res.Runs)
			os.Exit(1)
		}
		fmt.Printf("%s: sabotaged recovery caught in %d of %d runs (%d violations) — harness works\n",
			what, len(res.Failures), res.Runs, res.ViolationCount())
		return
	}
	if len(res.Failures) > 0 {
		fmt.Printf("%s: %d of %d runs FAILED (%d violations)\n", what, len(res.Failures), res.Runs, res.ViolationCount())
		os.Exit(1)
	}
	if res.Boundaries > 0 {
		fmt.Printf("%s: %d runs, %d boundaries, no violations\n", what, res.Runs, res.Boundaries)
	} else {
		fmt.Printf("%s: %d runs, no violations\n", what, res.Runs)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "chaos: %v\n", strings.TrimPrefix(err.Error(), "chaos: "))
	os.Exit(1)
}
