package main

import (
	"flag"
	"strings"
	"testing"

	"soteria/internal/chaos"
	"soteria/internal/memctrl"
)

// parseDeviceRepro feeds a printed repro line back through a flag set
// mirroring the one main defines (same names, same defaults). If main's
// flags and this mirror drift apart, the round-trip below fails — which is
// the point: a repro line must stay parseable by this binary forever.
func parseDeviceRepro(t *testing.T, line string) chaos.DeviceConfig {
	t.Helper()
	args := strings.Fields(line)
	if len(args) < 4 || args[0] != "go" || args[1] != "run" || args[2] != "./cmd/chaos" {
		t.Fatalf("repro line does not invoke cmd/chaos: %q", line)
	}
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "")
	writes := fs.Int("writes", 200, "")
	modeName := fs.String("mode", "src", "")
	strategyName := fs.String("strategy", "", "")
	crashAt := fs.Int("crash-at", -1, "")
	deviceRun := fs.Bool("device", false, "")
	shards := fs.Int("shards", 4, "")
	if err := fs.Parse(args[3:]); err != nil {
		t.Fatalf("repro line does not parse: %v\nline: %s", err, line)
	}
	if !*deviceRun {
		t.Fatalf("repro line lost -device: %s", line)
	}
	mode, err := chaos.ParseMode(*modeName)
	if err != nil {
		t.Fatalf("repro line mode: %v", err)
	}
	return chaos.DeviceConfig{
		Seed:     *seed,
		Writes:   *writes,
		Shards:   *shards,
		Mode:     mode,
		Strategy: *strategyName,
		CrashAt:  *crashAt,
	}
}

// TestDeviceReproRoundTrip: a pasted repro line must be self-contained.
// The strategy flag used to be dropped when the failure was found via
// -schemes, so a non-default strategy's failure replayed under the default
// strategy — here the full flag set must survive a parse round-trip AND
// replay the byte-identical scenario.
func TestDeviceReproRoundTrip(t *testing.T) {
	orig := chaos.DeviceConfig{Seed: 11, Writes: 90, Shards: 4, Mode: memctrl.ModeSAC, Strategy: "triad-nvm-2", CrashAt: 33}
	line := chaos.DeviceRepro(orig)
	if !strings.Contains(line, "-strategy triad-nvm-2") {
		t.Fatalf("repro line omits the strategy: %s", line)
	}
	parsed := parseDeviceRepro(t, line)
	if got := chaos.DeviceRepro(parsed); got != line {
		t.Fatalf("repro is not a fixpoint:\n got %q\nwant %q", got, line)
	}

	origRes, err := chaos.DeviceRun(orig)
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	parsedRes, err := chaos.DeviceRun(parsed)
	if err != nil {
		t.Fatalf("parsed run: %v", err)
	}
	if origRes.Summary() != parsedRes.Summary() {
		t.Fatalf("parsed repro replays a different scenario\n--- original ---\n%s--- parsed ---\n%s",
			origRes.Summary(), parsedRes.Summary())
	}
}

// TestDeviceReproDefaultStrategy: even a defaulted strategy is spelled out,
// so the line keeps meaning the same scenario if the default ever changes.
func TestDeviceReproDefaultStrategy(t *testing.T) {
	line := chaos.DeviceRepro(chaos.DeviceConfig{Seed: 1, Writes: 60, Mode: memctrl.ModeSRC, CrashAt: -1})
	if !strings.Contains(line, "-strategy "+memctrl.DefaultStrategy) {
		t.Fatalf("repro line omits the defaulted strategy: %s", line)
	}
	parsed := parseDeviceRepro(t, line)
	if parsed.Strategy != memctrl.DefaultStrategy || parsed.Shards != 4 {
		t.Fatalf("parsed defaults wrong: %+v", parsed)
	}
}
