// Command benchcompare gates benchmark regressions: it compares a new
// `go test -bench` run against a checked-in baseline and exits non-zero
// when any shared benchmark's ns/op grew beyond the tolerance. CI runs it
// after the benchmark smoke step so a hot-path slowdown fails the build
// instead of silently landing.
//
// Both inputs may be bench2json artifacts (JSON) or raw `go test -bench`
// text; the format is sniffed per file.
//
// Usage:
//
//	go run ./cmd/benchcompare -old BENCH_baseline.json -new bench_gate.txt
//	go run ./cmd/benchcompare -old BENCH_baseline.json -new new.json -tolerance 0.10
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"soteria/internal/benchparse"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline report (bench2json JSON or go test -bench text)")
		newPath   = flag.String("new", "", "new report (bench2json JSON or go test -bench text)")
		unit      = flag.String("unit", "ns/op", "metric to compare")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional growth before failing (0.20 = 20%)")
		missingOK = flag.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from the new run")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}

	oldRep, err := loadReport(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := loadReport(*newPath)
	if err != nil {
		fatal(err)
	}

	deltas := benchparse.Compare(oldRep, newRep, *unit)
	if len(deltas) == 0 {
		fatal(fmt.Errorf("no %q benchmarks in common between %s and %s", *unit, *oldPath, *newPath))
	}
	fmt.Print(benchparse.FormatDeltas(deltas, *tolerance))

	failed := false
	for _, d := range deltas {
		if d.Regressed(*tolerance) {
			fmt.Fprintf(os.Stderr, "benchcompare: %s regressed %.1f%% (limit %.0f%%)\n",
				d.Name, (d.Ratio-1)*100, *tolerance*100)
			failed = true
		}
		if d.OnlyOld && !*missingOK {
			fmt.Fprintf(os.Stderr, "benchcompare: %s is in the baseline but missing from the new run\n", d.Name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadReport reads a report from a bench2json artifact or raw benchmark
// text, sniffing the format off the first non-space byte.
func loadReport(path string) (*benchparse.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var rep benchparse.Report
		if err := json.Unmarshal(trimmed, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &rep, nil
	}
	rep, err := benchparse.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}
