// Command soteria-sim runs one workload through the secure NVM memory
// controller in a chosen protection mode and prints the full statistics
// breakdown — the quickest way to poke at the simulator.
//
// Usage:
//
//	soteria-sim -workload hashmap -mode SRC -ops 200000
//	soteria-sim -workload uBENCH128 -mode baseline -check
//	soteria-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"soteria/internal/config"
	"soteria/internal/cpusim"
	"soteria/internal/memctrl"
	"soteria/internal/stats"
	"soteria/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "hashmap", "workload name (see -list)")
		mode      = flag.String("mode", "SRC", "protection mode: nonsecure | baseline | SRC | SAC")
		ops       = flag.Uint64("ops", 200_000, "memory operations to simulate")
		warmup    = flag.Uint64("warmup", 20_000, "warm-up operations before stats reset")
		footprint = flag.Uint64("footprint", 256<<20, "workload footprint in bytes")
		seed      = flag.Int64("seed", 1, "workload seed")
		check     = flag.Bool("check", false, "verify end-to-end data integrity on every read")
		list      = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-12s (%s)\n", w.Name, w.Class)
		}
		return
	}

	m, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	w, err := workload.ByName(*wl)
	if err != nil {
		fatal(err)
	}

	cfg := config.Table3()
	ctrl, err := memctrl.New(cfg, m, []byte("soteria-sim"), memctrl.Options{})
	if err != nil {
		fatal(err)
	}
	cpu, err := cpusim.New(cfg, ctrl)
	if err != nil {
		fatal(err)
	}
	cpu.Check = *check

	gen := w.New(*footprint, *seed)
	if *warmup > 0 {
		if _, err := cpu.Run(gen, *warmup); err != nil {
			fatal(err)
		}
		ctrl.ResetStats()
	}
	res, err := cpu.Run(gen, *warmup+*ops)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload %s on %s: %d memory ops in %v simulated time\n\n",
		res.Workload, res.Mode, res.MemOps, res.ExecTime.Duration())

	c := stats.NewCounters()
	c.Add("instructions", res.Instructions)
	c.Add("memory ops", res.MemOps)
	c.Add("reads", res.Reads)
	c.Add("writes", res.Writes)
	c.Add("persist barriers", res.Barriers)
	c.Add("L1 hits", res.L1.Hits)
	c.Add("L1 misses", res.L1.Misses)
	c.Add("LLC misses", res.LLC.Misses)
	c.Add("controller requests", res.Ctrl.MemRequests)
	c.Add("NVM reads", res.Ctrl.NVMReads)
	for i := memctrl.WCData; i <= memctrl.WCRecovery; i++ {
		c.Add("NVM writes: "+i.String(), res.Ctrl.NVMWrites[i])
	}
	c.Add("WPQ forwards", res.Ctrl.WPQForwards)
	c.Add("WPQ stalls", res.WPQ.Stalls)
	c.Add("page re-encryptions", res.Ctrl.PageReencrypt)
	c.Add("Osiris forced write-backs", res.Ctrl.ForcedWB)
	c.Add("metadata cache hits", res.Meta.Hits)
	c.Add("metadata cache misses", res.Meta.Misses)
	c.Add("dirty tree evictions", res.Meta.DirtyTreeEvictions)
	if _, err := c.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}

	if m != memctrl.ModeNonSecure && res.Meta.EvictionsByLevel != nil {
		fmt.Println("\neviction share by tree level:")
		for l := 1; l < res.Meta.EvictionsByLevel.Buckets(); l++ {
			if n := res.Meta.EvictionsByLevel.Count(l); n > 0 {
				fmt.Printf("  L%-2d %6.2f%% (%d)\n", l, res.Meta.EvictionsByLevel.Fraction(l)*100, n)
			}
		}
	}
	if *check {
		fmt.Println("\nend-to-end data integrity verified on every read: OK")
	}
}

func parseMode(s string) (memctrl.Mode, error) {
	switch strings.ToLower(s) {
	case "nonsecure", "non-secure", "ns":
		return memctrl.ModeNonSecure, nil
	case "baseline", "secure-baseline":
		return memctrl.ModeBaseline, nil
	case "src":
		return memctrl.ModeSRC, nil
	case "sac":
		return memctrl.ModeSAC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soteria-sim:", err)
	os.Exit(1)
}
