// Command soteria-sim runs one workload through the secure NVM memory
// controller in one or more protection modes and prints the full
// statistics breakdown — the quickest way to poke at the simulator.
//
// Usage:
//
//	soteria-sim -workload hashmap -mode SRC -ops 200000
//	soteria-sim -workload uBENCH128 -mode baseline -check
//	soteria-sim -mode baseline,SRC,SAC -workers 3 -metrics telemetry.json
//	soteria-sim -list
//
// With -metrics the merged telemetry snapshot of all modes is written to
// the given file (.prom extension selects the Prometheus text format,
// anything else deterministic JSON; "-" prints JSON to stdout). The
// snapshot is byte-identical for a fixed configuration at any -workers
// value. -pprof captures a CPU profile of the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"soteria/internal/config"
	"soteria/internal/cpusim"
	"soteria/internal/memctrl"
	"soteria/internal/runner"
	"soteria/internal/stats"
	"soteria/internal/telemetry"
	"soteria/internal/workload"
)

// simParams is everything runSim needs; main fills it from flags, the
// golden-snapshot test fills it directly.
type simParams struct {
	workload  string
	modes     []memctrl.Mode
	ops       uint64
	warmup    uint64
	footprint uint64
	seed      int64
	check     bool
	workers   int
}

// simRun is one mode's completed simulation with its telemetry snapshot.
type simRun struct {
	mode memctrl.Mode
	res  cpusim.Result
	snap *telemetry.Snapshot
}

// runSim executes the workload once per requested mode through the shared
// worker pool and returns the per-mode results plus the telemetry
// snapshots merged in mode order. Each mode runs against its own
// controller and registry (attached after the warm-up stats reset, so
// telemetry covers exactly the measured window); the merge order is fixed,
// so the combined snapshot does not depend on the worker count.
func runSim(p simParams) ([]simRun, *telemetry.Snapshot, error) {
	w, err := workload.ByName(p.workload)
	if err != nil {
		return nil, nil, err
	}
	runs := make([]simRun, len(p.modes))
	eng := runner.New(runner.Options{Workers: p.workers})
	err = eng.Do("sim", len(p.modes), func(i int) error {
		mode := p.modes[i]
		cfg := config.Table3()
		ctrl, err := memctrl.New(cfg, mode, []byte("soteria-sim"), memctrl.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		cpu, err := cpusim.New(cfg, ctrl)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		cpu.Check = p.check
		gen := w.New(p.footprint, p.seed)
		if p.warmup > 0 {
			if _, err := cpu.Run(gen, p.warmup); err != nil {
				return fmt.Errorf("%s: %w", mode, err)
			}
			ctrl.ResetStats()
		}
		reg := telemetry.NewRegistry()
		ctrl.AttachTelemetry(reg)
		res, err := cpu.Run(gen, p.warmup+p.ops)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		runs[i] = simRun{mode: mode, res: res, snap: reg.Snapshot()}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	merged := &telemetry.Snapshot{}
	for _, r := range runs {
		merged.Merge(r.snap)
	}
	return runs, merged, nil
}

func main() {
	var (
		wl        = flag.String("workload", "hashmap", "workload name (see -list)")
		mode      = flag.String("mode", "SRC", "protection mode(s), comma-separated: nonsecure | baseline | SRC | SAC")
		ops       = flag.Uint64("ops", 200_000, "memory operations to simulate")
		warmup    = flag.Uint64("warmup", 20_000, "warm-up operations before stats reset")
		footprint = flag.Uint64("footprint", 256<<20, "workload footprint in bytes")
		seed      = flag.Int64("seed", 1, "workload seed")
		check     = flag.Bool("check", false, "verify end-to-end data integrity on every read")
		workers   = flag.Int("workers", 0, "parallel workers across modes (0 = all CPUs; results identical for any value)")
		metrics   = flag.String("metrics", "", "write merged telemetry snapshot to file (.prom = Prometheus text, else JSON, - = stdout)")
		cpuprof   = flag.String("pprof", "", "write a CPU profile of the run to file")
		list      = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-12s (%s)\n", w.Name, w.Class)
		}
		return
	}

	var modes []memctrl.Mode
	for _, s := range strings.Split(*mode, ",") {
		m, err := parseMode(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		modes = append(modes, m)
	}

	if *cpuprof != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	runs, merged, err := runSim(simParams{
		workload:  *wl,
		modes:     modes,
		ops:       *ops,
		warmup:    *warmup,
		footprint: *footprint,
		seed:      *seed,
		check:     *check,
		workers:   *workers,
	})
	if err != nil {
		fatal(err)
	}

	for i, r := range runs {
		if i > 0 {
			fmt.Println()
		}
		printRun(r.mode, r.res, *check)
	}

	if *metrics != "" {
		if err := merged.WriteFile(*metrics, fmt.Sprintf("workload=%q", *wl)); err != nil {
			fatal(err)
		}
		if *metrics != "-" {
			fmt.Printf("\ntelemetry snapshot written to %s\n", *metrics)
		}
	}
}

// printRun renders one mode's statistics breakdown.
func printRun(mode memctrl.Mode, res cpusim.Result, check bool) {
	fmt.Printf("workload %s on %s: %d memory ops in %v simulated time\n\n",
		res.Workload, res.Mode, res.MemOps, res.ExecTime.Duration())

	c := stats.NewCounters()
	c.Add("instructions", res.Instructions)
	c.Add("memory ops", res.MemOps)
	c.Add("reads", res.Reads)
	c.Add("writes", res.Writes)
	c.Add("persist barriers", res.Barriers)
	c.Add("L1 hits", res.L1.Hits)
	c.Add("L1 misses", res.L1.Misses)
	c.Add("LLC misses", res.LLC.Misses)
	c.Add("controller requests", res.Ctrl.MemRequests)
	c.Add("NVM reads", res.Ctrl.NVMReads)
	for i := memctrl.WCData; i <= memctrl.WCRecovery; i++ {
		c.Add("NVM writes: "+i.String(), res.Ctrl.NVMWrites[i])
	}
	c.Add("WPQ forwards", res.Ctrl.WPQForwards)
	c.Add("WPQ stalls", res.WPQ.Stalls)
	c.Add("page re-encryptions", res.Ctrl.PageReencrypt)
	c.Add("Osiris forced write-backs", res.Ctrl.ForcedWB)
	c.Add("metadata cache hits", res.Meta.Hits)
	c.Add("metadata cache misses", res.Meta.Misses)
	c.Add("dirty tree evictions", res.Meta.DirtyTreeEvictions)
	if _, err := c.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}

	if mode != memctrl.ModeNonSecure && res.Meta.EvictionsByLevel != nil {
		fmt.Println("\neviction share by tree level:")
		for l := 1; l < res.Meta.EvictionsByLevel.Buckets(); l++ {
			if n := res.Meta.EvictionsByLevel.Count(l); n > 0 {
				fmt.Printf("  L%-2d %6.2f%% (%d)\n", l, res.Meta.EvictionsByLevel.Fraction(l)*100, n)
			}
		}
	}
	if check {
		fmt.Println("\nend-to-end data integrity verified on every read: OK")
	}
}

func parseMode(s string) (memctrl.Mode, error) {
	switch strings.ToLower(s) {
	case "nonsecure", "non-secure", "ns":
		return memctrl.ModeNonSecure, nil
	case "baseline", "secure-baseline":
		return memctrl.ModeBaseline, nil
	case "src":
		return memctrl.ModeSRC, nil
	case "sac":
		return memctrl.ModeSAC, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soteria-sim:", err)
	os.Exit(1)
}
