package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"soteria/internal/memctrl"
)

var update = flag.Bool("update", false, "rewrite the golden telemetry snapshot")

// goldenParams is the fixed trace behind the golden snapshot: a 1k-access
// hashmap run in all three secure modes. Everything that could move the
// numbers is pinned.
func goldenParams(workers int) simParams {
	return simParams{
		workload:  "hashmap",
		modes:     []memctrl.Mode{memctrl.ModeBaseline, memctrl.ModeSRC, memctrl.ModeSAC},
		ops:       1000,
		warmup:    100,
		footprint: 4 << 20,
		seed:      3,
		workers:   workers,
	}
}

// TestGoldenTelemetrySnapshot locks the merged telemetry JSON of a fixed
// trace byte for byte: across repeated runs, across worker counts, and
// across commits (via the checked-in golden file). Any counter that
// becomes nondeterministic — a map-ordered merge, a wall-clock-derived
// value, a data race — breaks this test. Refresh intentionally changed
// numbers with `go test ./cmd/soteria-sim -run Golden -update`.
func TestGoldenTelemetrySnapshot(t *testing.T) {
	golden := filepath.Join("testdata", "golden_telemetry.json")

	var first []byte
	for _, workers := range []int{1, 2, 4} {
		_, merged, err := runSim(goldenParams(workers))
		if err != nil {
			t.Fatal(err)
		}
		data, err := merged.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if first == nil {
			first = data
			continue
		}
		if !bytes.Equal(data, first) {
			t.Fatalf("telemetry snapshot depends on worker count (workers=%d):\n%s\n--- workers=1 ---\n%s",
				workers, data, first)
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("telemetry snapshot diverged from %s (rerun with -update if intended)\ngot %d bytes, want %d",
			golden, len(first), len(want))
	}
}
